/**
 * @file
 * Shared helpers for the paper-reproduction benchmark binaries.
 *
 * Every bench regenerates one table or figure of "Prefetch-Aware DRAM
 * Controllers" (MICRO-41): it prints the same rows/series the paper
 * reports, computed from our simulation stack. Absolute values differ
 * from the paper (different substrate; see DESIGN.md), the *shape* is
 * what each bench asserts in its header comment.
 */

#ifndef PADC_BENCH_COMMON_HH
#define PADC_BENCH_COMMON_HH

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "sim/experiment.hh"
#include "sim/journal.hh"
#include "workload/mixes.hh"
#include "workload/profile.hh"

namespace padc::bench
{

/** The five policy columns used by most figures. */
inline const std::vector<sim::PolicySetup> &
fivePolicies()
{
    static const std::vector<sim::PolicySetup> policies = {
        sim::PolicySetup::NoPref,     sim::PolicySetup::DemandFirst,
        sim::PolicySetup::DemandPrefEqual, sim::PolicySetup::ApsOnly,
        sim::PolicySetup::Padc,
    };
    return policies;
}

/** Default run options per system scale (keeps the suite laptop-fast). */
inline sim::RunOptions
defaultOptions(std::uint32_t cores)
{
    sim::RunOptions opt;
    opt.instructions = cores == 1 ? 200000 : 100000;
    opt.warmup = opt.instructions / 4;
    opt.max_cycles = 80000000;
    return opt;
}

/**
 * Print the per-point failure summary of a sweep: which points failed
 * or were truncated at the cycle cap, and why. Prints nothing when the
 * sweep was fault-free, so healthy bench output is unchanged. Returns
 * the number of unhealthy points.
 */
template <typename T>
inline std::size_t
reportSweepFailures(const std::vector<sim::SweepPoint> &points,
                    const std::vector<sim::Result<T>> &results)
{
    std::size_t bad = 0;
    for (const auto &result : results)
        bad += result.ok() ? 0 : 1;
    if (bad == 0)
        return 0;
    std::printf("WARNING: %zu of %zu sweep points did not produce a "
                "converged result:\n",
                bad, results.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
        if (results[i].ok())
            continue;
        std::printf("  point %zu (%s): %s: %s\n", i,
                    sim::describePoint(points[i]).c_str(),
                    sim::toString(results[i].outcome.status),
                    results[i].outcome.detail.c_str());
    }
    return bad;
}

/** Print the standard bench banner. */
inline void
banner(const char *artifact, const char *description,
       const char *expectation)
{
    std::printf("==============================================================\n");
    std::printf("%s -- %s\n", artifact, description);
    std::printf("paper shape: %s\n", expectation);
    std::printf("==============================================================\n");
}

/** Aggregate multiprogrammed results across a set of mixes. */
struct Aggregate
{
    double ws = 0.0;
    double hs = 0.0;
    double uf = 0.0;
    double traffic = 0.0;         ///< mean total lines per mix
    double traffic_useless = 0.0; ///< mean useless-prefetch lines
    double traffic_useful = 0.0;
    double traffic_demand = 0.0;
    std::uint32_t mixes = 0;
};

/** Fold one evaluated mix into an aggregate. */
inline void
foldEvaluation(Aggregate &agg, const sim::MixEvaluation &eval)
{
    agg.ws += eval.summary.ws;
    agg.hs += eval.summary.hs;
    agg.uf += eval.summary.uf;
    agg.traffic += static_cast<double>(eval.metrics.totalTraffic());
    agg.traffic_useless +=
        static_cast<double>(eval.metrics.trafficPrefUseless());
    agg.traffic_useful +=
        static_cast<double>(eval.metrics.trafficPrefUseful());
    agg.traffic_demand +=
        static_cast<double>(eval.metrics.trafficDemand());
    ++agg.mixes;
}

/** Divide the accumulated sums through by the mix count. */
inline void
finishAggregate(Aggregate &agg)
{
    const double n = agg.mixes > 0 ? agg.mixes : 1;
    agg.ws /= n;
    agg.hs /= n;
    agg.uf /= n;
    agg.traffic /= n;
    agg.traffic_useless /= n;
    agg.traffic_useful /= n;
    agg.traffic_demand /= n;
}

/**
 * Run @p config over every mix and average the multiprogrammed metrics.
 * The alone-IPC cache must be built from the same base options. Mixes
 * are evaluated in parallel (sim::sharedRunner()); the aggregate is
 * folded in mix order, so results are independent of the thread count.
 */
inline Aggregate
aggregateOverMixes(const sim::SystemConfig &config,
                   const std::vector<workload::Mix> &mixes,
                   const sim::RunOptions &base_options,
                   sim::AloneIpcCache &alone)
{
    std::vector<sim::SweepPoint> points;
    for (std::size_t i = 0; i < mixes.size(); ++i) {
        sim::RunOptions options = base_options;
        options.mix_seed = i;
        points.push_back({config, mixes[i], options});
    }
    const auto evals =
        sim::evaluateSweep(points, alone, sim::sharedRunner(),
                           sim::envJournal());
    reportSweepFailures(points, evals);

    Aggregate agg;
    for (const auto &eval : evals)
        foldEvaluation(agg, eval.value);
    finishAggregate(agg);
    return agg;
}

/** Print one aggregate row. */
inline void
printAggregate(const std::string &label, const Aggregate &agg)
{
    std::printf("%-22s WS %7.3f  HS %7.3f  UF %6.2f  traffic %9.0f"
                "  (dem %7.0f  useful %7.0f  useless %7.0f)\n",
                label.c_str(), agg.ws, agg.hs, agg.uf, agg.traffic,
                agg.traffic_demand, agg.traffic_useful,
                agg.traffic_useless);
}

/**
 * Single-core sweep: IPC of every policy for every benchmark,
 * normalized to no-prefetching (the paper's Fig. 6 format). Returns
 * the per-policy vector of normalized IPCs (for gmean reporting).
 */
inline std::vector<std::vector<double>>
singleCoreNormalizedIpc(const sim::SystemConfig &base,
                        const std::vector<std::string> &benchmarks,
                        const std::vector<sim::PolicySetup> &policies,
                        const sim::RunOptions &options)
{
    std::vector<std::vector<double>> normalized(policies.size());

    // One sweep point per (benchmark, no-pref baseline + each policy),
    // evaluated across the pool; the table prints from ordered results.
    const std::size_t stride = policies.size() + 1;
    std::vector<sim::SweepPoint> points;
    for (const auto &name : benchmarks) {
        const workload::Mix mix = {name};
        points.push_back(
            {sim::applyPolicy(base, sim::PolicySetup::NoPref), mix,
             options});
        for (const auto setup : policies)
            points.push_back({sim::applyPolicy(base, setup), mix, options});
    }
    const auto runs =
        sim::runSweep(points, sim::sharedRunner(), sim::envJournal());
    reportSweepFailures(points, runs);
    // Failed points carry an empty metrics vector; read them as 0 IPC
    // so one bad point cannot take down the whole table.
    const auto ipc_of = [&runs](std::size_t i) {
        const sim::RunMetrics &m = runs[i].value;
        return m.cores.empty() ? 0.0 : m.cores[0].ipc;
    };

    std::printf("%-16s", "benchmark");
    for (const auto setup : policies)
        std::printf(" %17s", sim::policyLabel(setup).c_str());
    std::printf("\n");

    for (std::size_t b = 0; b < benchmarks.size(); ++b) {
        const double ipc_nopref = ipc_of(b * stride);
        std::printf("%-16s", benchmarks[b].c_str());
        for (std::size_t p = 0; p < policies.size(); ++p) {
            const double ipc = ipc_of(b * stride + 1 + p);
            const double norm = ipc_nopref > 0 ? ipc / ipc_nopref : 0.0;
            normalized[p].push_back(norm);
            std::printf(" %17.3f", norm);
        }
        std::printf("\n");
    }

    std::printf("%-16s", "gmean");
    for (const auto &column : normalized)
        std::printf(" %17.3f", geomean(column));
    std::printf("\n");
    return normalized;
}

/**
 * The standard multiprogrammed "overall" experiment: random mixes on an
 * n-core system, one aggregate row per policy. @p mutate (if given)
 * adjusts the base configuration before policies are applied (e.g. dual
 * channels, shared L2, row-buffer size).
 */
inline void
overallBench(std::uint32_t cores, std::uint32_t num_mixes,
             const std::vector<sim::PolicySetup> &policies,
             const std::function<void(sim::SystemConfig &)> &mutate = {},
             std::uint64_t mix_seed = 1234)
{
    sim::SystemConfig base = sim::SystemConfig::baseline(cores);
    if (mutate)
        mutate(base);
    const sim::RunOptions options = defaultOptions(cores);
    const auto mixes = workload::randomMixes(num_mixes, cores, mix_seed);
    sim::AloneIpcCache alone(base, options);

    // Flatten the whole (policy x mix) grid into one sweep so the pool
    // stays saturated across policy boundaries, then fold and print each
    // policy's row from the ordered results.
    std::vector<sim::SweepPoint> points;
    for (const auto setup : policies) {
        const sim::SystemConfig config = sim::applyPolicy(base, setup);
        for (std::size_t i = 0; i < mixes.size(); ++i) {
            sim::RunOptions point_options = options;
            point_options.mix_seed = i;
            points.push_back({config, mixes[i], point_options});
        }
    }
    const auto evals =
        sim::evaluateSweep(points, alone, sim::sharedRunner(),
                           sim::envJournal());
    reportSweepFailures(points, evals);

    std::printf("%u-core system, %u random mixes\n", cores, num_mixes);
    for (std::size_t p = 0; p < policies.size(); ++p) {
        Aggregate agg;
        for (std::size_t i = 0; i < mixes.size(); ++i)
            foldEvaluation(agg, evals[p * mixes.size() + i].value);
        finishAggregate(agg);
        printAggregate(sim::policyLabel(policies[p]), agg);
    }
}

/**
 * One case-study mix (paper Section 6.3): per-policy individual
 * speedups plus WS/HS/UF and traffic.
 */
inline void
caseStudyBench(const workload::Mix &mix,
               const std::vector<sim::PolicySetup> &policies)
{
    sim::SystemConfig base =
        sim::SystemConfig::baseline(static_cast<std::uint32_t>(mix.size()));
    sim::RunOptions options = defaultOptions(
        static_cast<std::uint32_t>(mix.size()));
    options.instructions = 150000;
    options.warmup = 30000;
    sim::AloneIpcCache alone(base, options);

    std::printf("mix:");
    for (const auto &name : mix)
        std::printf(" %s", name.c_str());
    std::printf("\n%-22s", "policy");
    for (const auto &name : mix)
        std::printf(" IS(%-12s)", name.substr(0, 12).c_str());
    std::printf(" %7s %7s %6s %9s %9s\n", "WS", "HS", "UF", "traffic",
                "useless");

    std::vector<sim::SweepPoint> points;
    for (const auto setup : policies)
        points.push_back({sim::applyPolicy(base, setup), mix, options});
    const auto evals =
        sim::evaluateSweep(points, alone, sim::sharedRunner(),
                           sim::envJournal());
    reportSweepFailures(points, evals);

    for (std::size_t p = 0; p < policies.size(); ++p) {
        const sim::MixEvaluation &eval = evals[p].value;
        std::printf("%-22s", sim::policyLabel(policies[p]).c_str());
        for (const double is : eval.summary.speedups)
            std::printf(" %16.3f", is);
        std::printf(" %7.3f %7.3f %6.2f %9llu %9llu\n", eval.summary.ws,
                    eval.summary.hs, eval.summary.uf,
                    static_cast<unsigned long long>(
                        eval.metrics.totalTraffic()),
                    static_cast<unsigned long long>(
                        eval.metrics.trafficPrefUseless()));
    }
}

/** The paper's Fig. 1 / Fig. 6 benchmark selection (available subset). */
inline std::vector<std::string>
figureSixBenchmarks()
{
    return {"swim_00",      "galgel_00",   "art_00",     "ammp_00",
            "gcc_06",       "mcf_06",      "libquantum_06",
            "omnetpp_06",   "xalancbmk_06", "bwaves_06",  "milc_06",
            "cactusADM_06", "leslie3d_06", "soplex_06",  "lbm_06"};
}

} // namespace padc::bench

#endif // PADC_BENCH_COMMON_HH
