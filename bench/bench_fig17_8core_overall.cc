/**
 * @file
 * Figure 17: overall performance and traffic on the 8-core system over
 * random mixes (paper: 21 workloads).
 *
 * Paper shape: with one controller the rigid policies barely help (or
 * hurt) at 8 cores; PADC improves WS ~9.9% over demand-first and cuts
 * traffic ~9.4% -- the benefit grows with core count.
 */

#include "common.hh"

int
main()
{
    using namespace padc;
    bench::banner("Figure 17", "8-core overall performance and traffic",
                  "PADC's edge grows with core count");
    bench::overallBench(8, 8, bench::fivePolicies());
    return 0;
}
