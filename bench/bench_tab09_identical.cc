/**
 * @file
 * Tables 9-10: four identical applications per workload -- all
 * libquantum (prefetch-friendly) and all milc (prefetch-unfriendly) on
 * the 4-core system.
 *
 * Paper shape: for 4x libquantum, demand-pref-equal/APS/PADC all beat
 * demand-first (paper +18.2% WS) with near-equal per-core speedups; for
 * 4x milc, PADC beats every rigid policy via dropping.
 */

#include "common.hh"

int
main()
{
    using namespace padc;
    bench::banner("Table 9", "four identical libquantum instances",
                  "equal/APS/PADC > demand-first; speedups uniform");
    bench::caseStudyBench({"libquantum_06", "libquantum_06",
                           "libquantum_06", "libquantum_06"},
                          bench::fivePolicies());
    std::printf("\n");
    bench::banner("Table 10", "four identical milc instances",
                  "demand-first/APS > equal; PADC best of all");
    bench::caseStudyBench({"milc_06", "milc_06", "milc_06", "milc_06"},
                          bench::fivePolicies());
    return 0;
}
