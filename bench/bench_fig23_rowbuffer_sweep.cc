/**
 * @file
 * Figure 23: WS of each policy across DRAM row-buffer sizes (2KB to
 * 128KB) on the 4-core system.
 *
 * Paper shape: PADC wins at every size; the rigid policies lose their
 * prefetching benefit at very large rows (demand-first can even drop
 * below no-prefetching) while PADC keeps improving.
 */

#include "common.hh"

int
main()
{
    using namespace padc;
    bench::banner("Figure 23", "row-buffer size sweep, 4 cores",
                  "PADC best at every row size");
    const sim::RunOptions options = bench::defaultOptions(4);
    const auto mixes = workload::randomMixes(4, 4, 77);

    std::printf("%-10s", "row size");
    for (const auto setup : bench::fivePolicies())
        std::printf(" %17s", sim::policyLabel(setup).c_str());
    std::printf("\n");

    for (const std::uint32_t row_kb : {2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
        sim::SystemConfig base = sim::SystemConfig::baseline(4);
        base.dram.geometry.row_bytes = row_kb * 1024;
        sim::AloneIpcCache alone(base, options);
        std::printf("%6uKB  ", row_kb);
        for (const auto setup : bench::fivePolicies()) {
            const auto agg = bench::aggregateOverMixes(
                sim::applyPolicy(base, setup), mixes, options, alone);
            std::printf(" %17.3f", agg.ws);
        }
        std::printf("\n");
    }
    return 0;
}
