/**
 * @file
 * Figures 14-15, case study III: two prefetch-friendly (libquantum,
 * GemsFDTD) plus two prefetch-unfriendly (omnetpp, galgel) applications
 * on the 4-core system.
 *
 * Paper shape: PADC prevents the unfriendly apps' useless prefetches
 * from denying service to the friendly apps: best WS/HS, large traffic
 * reduction (paper: -14.5%).
 */

#include "common.hh"

int
main()
{
    using namespace padc;
    bench::banner("Figures 14-15 (case study III)",
                  "mixed friendly/unfriendly applications, 4 cores",
                  "PADC best WS/HS and lowest unfairness; traffic cut");
    bench::caseStudyBench(workload::caseStudyMixed(),
                          bench::fivePolicies());
    return 0;
}
