/**
 * @file
 * Figure 6: single-core normalized IPC of all five policies over the
 * benchmark suite (15 shown + gmean over the full pool, mirroring the
 * paper's gmean55 bar).
 *
 * Paper shape: neither rigid policy wins everywhere; APS tracks the
 * best rigid policy per benchmark; PADC (APS+APD) is best on average
 * (+4.3% over demand-first in the paper).
 */

#include "common.hh"

int
main()
{
    using namespace padc;
    bench::banner("Figure 6", "single-core normalized IPC, five policies",
                  "APS ~= best rigid policy per app; PADC best gmean");

    const sim::SystemConfig base = sim::SystemConfig::baseline(1);
    const sim::RunOptions options = bench::defaultOptions(1);

    std::printf("-- the paper's 15 displayed benchmarks --\n");
    bench::singleCoreNormalizedIpc(base, bench::figureSixBenchmarks(),
                                   bench::fivePolicies(), options);

    std::printf("\n-- full profile pool (the paper's gmean55 bar) --\n");
    bench::singleCoreNormalizedIpc(base, workload::allProfileNames(),
                                   bench::fivePolicies(), options);
    return 0;
}
