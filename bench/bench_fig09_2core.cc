/**
 * @file
 * Figure 9: overall performance (WS, HS) and bus traffic on the 2-core
 * system over random multiprogrammed mixes (paper: 54 workloads; we run
 * a scaled-down random sample).
 *
 * Paper shape: PADC improves WS by ~8.4% and HS by ~6.4% over
 * demand-first while reducing traffic ~10%.
 */

#include "common.hh"

int
main()
{
    using namespace padc;
    bench::banner("Figure 9", "2-core overall performance and traffic",
                  "PADC best WS/HS, lowest traffic");
    bench::overallBench(2, 12, bench::fivePolicies());
    return 0;
}
