/**
 * @file
 * Figure 32: PADC on a runahead-execution CMP (Section 6.14).
 *
 * Paper shape: runahead improves the baseline by itself; PADC still
 * improves performance (+6.7% WS) and cuts traffic (-10.2%) on top of
 * runahead, since runahead requests are treated as demands.
 */

#include "common.hh"

int
main()
{
    using namespace padc;
    bench::banner("Figure 32", "runahead execution",
                  "PADC stacks with runahead");
    const std::vector<sim::PolicySetup> policies = {
        sim::PolicySetup::NoPref, sim::PolicySetup::DemandFirst,
        sim::PolicySetup::ApsOnly, sim::PolicySetup::Padc};
    std::printf("--- no runahead ---\n");
    bench::overallBench(4, 8, policies);
    std::printf("\n--- with runahead ---\n");
    bench::overallBench(4, 8, policies, [](sim::SystemConfig &cfg) {
        cfg.core.runahead = true;
    });
    return 0;
}
