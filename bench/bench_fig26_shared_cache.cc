/**
 * @file
 * Figures 26-27: shared last-level cache (2MB/16-way at 4 cores,
 * 4MB/32-way at 8 cores) instead of private L2s.
 *
 * Paper shape: PADC beats demand-first by ~8% at both scales;
 * demand-pref-equal does poorly (shared-cache pollution from useless
 * prefetches hurts every core), with a large traffic blow-up.
 */

#include "common.hh"

int
main()
{
    using namespace padc;
    bench::banner("Figures 26-27", "shared last-level cache",
                  "PADC best; equal policy hurt by cross-core pollution");
    const auto shared4 = [](sim::SystemConfig &cfg) {
        cfg.shared_l2 = true;
        cfg.l2.size_bytes = 2 * 1024 * 1024;
        cfg.l2.ways = 16;
        cfg.mshr_per_l2 = cfg.sched.request_buffer_size;
    };
    const auto shared8 = [](sim::SystemConfig &cfg) {
        cfg.shared_l2 = true;
        cfg.l2.size_bytes = 4 * 1024 * 1024;
        cfg.l2.ways = 32;
        cfg.mshr_per_l2 = cfg.sched.request_buffer_size;
    };
    bench::overallBench(4, 10, bench::fivePolicies(), shared4);
    std::printf("\n");
    bench::overallBench(8, 6, bench::fivePolicies(), shared8);
    return 0;
}
