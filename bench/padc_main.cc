/**
 * @file
 * Real main() of the `padc` experiment driver. All logic lives in
 * src/exp/driver.cc so the CLI is testable in-process.
 */

#include "exp/driver.hh"

int
main(int argc, char **argv)
{
    return padc::exp::driverMain(argc, argv);
}
