/**
 * @file
 * Figure 16: overall performance and traffic on the 4-core system over
 * random mixes (paper: 32 workloads).
 *
 * Paper shape: PADC improves WS by ~8.2% and HS by ~4.1% over
 * demand-first and cuts traffic ~10.1%.
 */

#include "common.hh"

int
main()
{
    using namespace padc;
    bench::banner("Figure 16", "4-core overall performance and traffic",
                  "PADC best WS/HS, lowest traffic");
    bench::overallBench(4, 12, bench::fivePolicies());
    return 0;
}
