/**
 * @file
 * Figure 24: every policy under the closed-row buffer-management policy
 * on the 4-core system, with open-row PADC as the reference.
 *
 * Paper shape: PADC still beats the rigid policies under closed-row
 * (+7.6% WS over closed-row demand-first); open-row PADC is slightly
 * better than closed-row PADC overall.
 */

#include "common.hh"

int
main()
{
    using namespace padc;
    bench::banner("Figure 24", "closed-row policy, 4 cores",
                  "PADC best under closed-row; open-row PADC slightly "
                  "ahead");
    const sim::RunOptions options = bench::defaultOptions(4);
    const auto mixes = workload::randomMixes(8, 4, 55);

    sim::SystemConfig open_base = sim::SystemConfig::baseline(4);
    sim::SystemConfig closed_base = open_base;
    closed_base.sched.row_policy = RowPolicy::Closed;

    sim::AloneIpcCache alone_open(open_base, options);
    sim::AloneIpcCache alone_closed(closed_base, options);

    for (const auto setup : bench::fivePolicies()) {
        const auto agg = bench::aggregateOverMixes(
            sim::applyPolicy(closed_base, setup), mixes, options,
            alone_closed);
        bench::printAggregate(sim::policyLabel(setup) + "-closed", agg);
    }
    const auto open_padc = bench::aggregateOverMixes(
        sim::applyPolicy(open_base, sim::PolicySetup::Padc), mixes,
        options, alone_open);
    bench::printAggregate("aps-apd (PADC)-open", open_padc);
    return 0;
}
