file(REMOVE_RECURSE
  "CMakeFiles/dram_inspector.dir/dram_inspector.cpp.o"
  "CMakeFiles/dram_inspector.dir/dram_inspector.cpp.o.d"
  "dram_inspector"
  "dram_inspector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dram_inspector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
