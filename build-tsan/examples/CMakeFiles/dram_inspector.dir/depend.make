# Empty dependencies file for dram_inspector.
# This may be replaced when dependencies are built.
