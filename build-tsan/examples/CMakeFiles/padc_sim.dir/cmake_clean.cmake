file(REMOVE_RECURSE
  "CMakeFiles/padc_sim.dir/padc_sim.cpp.o"
  "CMakeFiles/padc_sim.dir/padc_sim.cpp.o.d"
  "padc_sim"
  "padc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/padc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
