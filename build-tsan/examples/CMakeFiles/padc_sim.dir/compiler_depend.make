# Empty compiler generated dependencies file for padc_sim.
# This may be replaced when dependencies are built.
