file(REMOVE_RECURSE
  "CMakeFiles/sim_invariants_test.dir/sim/invariants_test.cc.o"
  "CMakeFiles/sim_invariants_test.dir/sim/invariants_test.cc.o.d"
  "sim_invariants_test"
  "sim_invariants_test.pdb"
  "sim_invariants_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_invariants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
