# Empty dependencies file for dram_channel_test.
# This may be replaced when dependencies are built.
