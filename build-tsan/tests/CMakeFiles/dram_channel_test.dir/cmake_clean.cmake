file(REMOVE_RECURSE
  "CMakeFiles/dram_channel_test.dir/dram/channel_test.cc.o"
  "CMakeFiles/dram_channel_test.dir/dram/channel_test.cc.o.d"
  "dram_channel_test"
  "dram_channel_test.pdb"
  "dram_channel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dram_channel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
