# Empty dependencies file for memctrl_policy_test.
# This may be replaced when dependencies are built.
