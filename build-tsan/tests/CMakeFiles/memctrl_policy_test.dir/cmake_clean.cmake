file(REMOVE_RECURSE
  "CMakeFiles/memctrl_policy_test.dir/memctrl/policy_test.cc.o"
  "CMakeFiles/memctrl_policy_test.dir/memctrl/policy_test.cc.o.d"
  "memctrl_policy_test"
  "memctrl_policy_test.pdb"
  "memctrl_policy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memctrl_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
