# Empty compiler generated dependencies file for dram_dram_system_test.
# This may be replaced when dependencies are built.
