file(REMOVE_RECURSE
  "CMakeFiles/dram_dram_system_test.dir/dram/dram_system_test.cc.o"
  "CMakeFiles/dram_dram_system_test.dir/dram/dram_system_test.cc.o.d"
  "dram_dram_system_test"
  "dram_dram_system_test.pdb"
  "dram_dram_system_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dram_dram_system_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
