# Empty dependencies file for workload_revisit_test.
# This may be replaced when dependencies are built.
