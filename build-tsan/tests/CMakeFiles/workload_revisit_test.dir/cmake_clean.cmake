file(REMOVE_RECURSE
  "CMakeFiles/workload_revisit_test.dir/workload/revisit_test.cc.o"
  "CMakeFiles/workload_revisit_test.dir/workload/revisit_test.cc.o.d"
  "workload_revisit_test"
  "workload_revisit_test.pdb"
  "workload_revisit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_revisit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
