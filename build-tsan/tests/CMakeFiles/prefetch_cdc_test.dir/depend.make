# Empty dependencies file for prefetch_cdc_test.
# This may be replaced when dependencies are built.
