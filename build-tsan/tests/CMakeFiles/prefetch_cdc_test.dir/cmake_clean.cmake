file(REMOVE_RECURSE
  "CMakeFiles/prefetch_cdc_test.dir/prefetch/cdc_test.cc.o"
  "CMakeFiles/prefetch_cdc_test.dir/prefetch/cdc_test.cc.o.d"
  "prefetch_cdc_test"
  "prefetch_cdc_test.pdb"
  "prefetch_cdc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prefetch_cdc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
