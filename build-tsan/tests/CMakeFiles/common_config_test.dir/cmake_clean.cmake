file(REMOVE_RECURSE
  "CMakeFiles/common_config_test.dir/common/config_test.cc.o"
  "CMakeFiles/common_config_test.dir/common/config_test.cc.o.d"
  "common_config_test"
  "common_config_test.pdb"
  "common_config_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_config_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
