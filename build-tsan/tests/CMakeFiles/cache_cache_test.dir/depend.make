# Empty dependencies file for cache_cache_test.
# This may be replaced when dependencies are built.
