file(REMOVE_RECURSE
  "CMakeFiles/dram_address_map_test.dir/dram/address_map_test.cc.o"
  "CMakeFiles/dram_address_map_test.dir/dram/address_map_test.cc.o.d"
  "dram_address_map_test"
  "dram_address_map_test.pdb"
  "dram_address_map_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dram_address_map_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
