# Empty compiler generated dependencies file for dram_address_map_test.
# This may be replaced when dependencies are built.
