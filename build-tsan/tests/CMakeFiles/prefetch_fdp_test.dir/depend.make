# Empty dependencies file for prefetch_fdp_test.
# This may be replaced when dependencies are built.
