file(REMOVE_RECURSE
  "CMakeFiles/prefetch_fdp_test.dir/prefetch/fdp_test.cc.o"
  "CMakeFiles/prefetch_fdp_test.dir/prefetch/fdp_test.cc.o.d"
  "prefetch_fdp_test"
  "prefetch_fdp_test.pdb"
  "prefetch_fdp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prefetch_fdp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
