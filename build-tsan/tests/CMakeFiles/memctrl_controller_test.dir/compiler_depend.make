# Empty compiler generated dependencies file for memctrl_controller_test.
# This may be replaced when dependencies are built.
