# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for memctrl_controller_test.
