file(REMOVE_RECURSE
  "CMakeFiles/memctrl_controller_test.dir/memctrl/controller_test.cc.o"
  "CMakeFiles/memctrl_controller_test.dir/memctrl/controller_test.cc.o.d"
  "memctrl_controller_test"
  "memctrl_controller_test.pdb"
  "memctrl_controller_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memctrl_controller_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
