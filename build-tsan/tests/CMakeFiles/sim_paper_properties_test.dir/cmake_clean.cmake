file(REMOVE_RECURSE
  "CMakeFiles/sim_paper_properties_test.dir/sim/paper_properties_test.cc.o"
  "CMakeFiles/sim_paper_properties_test.dir/sim/paper_properties_test.cc.o.d"
  "sim_paper_properties_test"
  "sim_paper_properties_test.pdb"
  "sim_paper_properties_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_paper_properties_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
