# Empty dependencies file for sim_paper_properties_test.
# This may be replaced when dependencies are built.
