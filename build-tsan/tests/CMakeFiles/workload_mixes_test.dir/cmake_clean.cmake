file(REMOVE_RECURSE
  "CMakeFiles/workload_mixes_test.dir/workload/mixes_test.cc.o"
  "CMakeFiles/workload_mixes_test.dir/workload/mixes_test.cc.o.d"
  "workload_mixes_test"
  "workload_mixes_test.pdb"
  "workload_mixes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_mixes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
