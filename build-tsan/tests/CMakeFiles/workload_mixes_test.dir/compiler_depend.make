# Empty compiler generated dependencies file for workload_mixes_test.
# This may be replaced when dependencies are built.
