# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for memctrl_accuracy_tracker_test.
