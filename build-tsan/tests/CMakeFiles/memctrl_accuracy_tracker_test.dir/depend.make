# Empty dependencies file for memctrl_accuracy_tracker_test.
# This may be replaced when dependencies are built.
