file(REMOVE_RECURSE
  "CMakeFiles/memctrl_accuracy_tracker_test.dir/memctrl/accuracy_tracker_test.cc.o"
  "CMakeFiles/memctrl_accuracy_tracker_test.dir/memctrl/accuracy_tracker_test.cc.o.d"
  "memctrl_accuracy_tracker_test"
  "memctrl_accuracy_tracker_test.pdb"
  "memctrl_accuracy_tracker_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memctrl_accuracy_tracker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
