file(REMOVE_RECURSE
  "CMakeFiles/sim_system_test.dir/sim/system_test.cc.o"
  "CMakeFiles/sim_system_test.dir/sim/system_test.cc.o.d"
  "sim_system_test"
  "sim_system_test.pdb"
  "sim_system_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_system_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
