# Empty compiler generated dependencies file for core_core_window_test.
# This may be replaced when dependencies are built.
