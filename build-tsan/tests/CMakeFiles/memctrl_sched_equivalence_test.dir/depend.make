# Empty dependencies file for memctrl_sched_equivalence_test.
# This may be replaced when dependencies are built.
