file(REMOVE_RECURSE
  "CMakeFiles/memctrl_sched_equivalence_test.dir/memctrl/sched_equivalence_test.cc.o"
  "CMakeFiles/memctrl_sched_equivalence_test.dir/memctrl/sched_equivalence_test.cc.o.d"
  "memctrl_sched_equivalence_test"
  "memctrl_sched_equivalence_test.pdb"
  "memctrl_sched_equivalence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memctrl_sched_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
