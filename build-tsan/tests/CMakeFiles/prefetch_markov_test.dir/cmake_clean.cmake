file(REMOVE_RECURSE
  "CMakeFiles/prefetch_markov_test.dir/prefetch/markov_test.cc.o"
  "CMakeFiles/prefetch_markov_test.dir/prefetch/markov_test.cc.o.d"
  "prefetch_markov_test"
  "prefetch_markov_test.pdb"
  "prefetch_markov_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prefetch_markov_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
