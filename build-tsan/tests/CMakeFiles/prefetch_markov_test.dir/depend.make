# Empty dependencies file for prefetch_markov_test.
# This may be replaced when dependencies are built.
