# Empty dependencies file for prefetch_stride_test.
# This may be replaced when dependencies are built.
