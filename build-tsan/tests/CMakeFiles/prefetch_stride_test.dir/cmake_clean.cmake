file(REMOVE_RECURSE
  "CMakeFiles/prefetch_stride_test.dir/prefetch/stride_test.cc.o"
  "CMakeFiles/prefetch_stride_test.dir/prefetch/stride_test.cc.o.d"
  "prefetch_stride_test"
  "prefetch_stride_test.pdb"
  "prefetch_stride_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prefetch_stride_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
