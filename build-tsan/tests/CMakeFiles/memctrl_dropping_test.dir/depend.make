# Empty dependencies file for memctrl_dropping_test.
# This may be replaced when dependencies are built.
