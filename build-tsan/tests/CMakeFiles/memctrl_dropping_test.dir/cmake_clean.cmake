file(REMOVE_RECURSE
  "CMakeFiles/memctrl_dropping_test.dir/memctrl/dropping_test.cc.o"
  "CMakeFiles/memctrl_dropping_test.dir/memctrl/dropping_test.cc.o.d"
  "memctrl_dropping_test"
  "memctrl_dropping_test.pdb"
  "memctrl_dropping_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memctrl_dropping_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
