file(REMOVE_RECURSE
  "CMakeFiles/prefetch_ddpf_test.dir/prefetch/ddpf_test.cc.o"
  "CMakeFiles/prefetch_ddpf_test.dir/prefetch/ddpf_test.cc.o.d"
  "prefetch_ddpf_test"
  "prefetch_ddpf_test.pdb"
  "prefetch_ddpf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prefetch_ddpf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
