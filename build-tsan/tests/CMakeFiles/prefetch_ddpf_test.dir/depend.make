# Empty dependencies file for prefetch_ddpf_test.
# This may be replaced when dependencies are built.
