file(REMOVE_RECURSE
  "CMakeFiles/cache_mshr_test.dir/cache/mshr_test.cc.o"
  "CMakeFiles/cache_mshr_test.dir/cache/mshr_test.cc.o.d"
  "cache_mshr_test"
  "cache_mshr_test.pdb"
  "cache_mshr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_mshr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
