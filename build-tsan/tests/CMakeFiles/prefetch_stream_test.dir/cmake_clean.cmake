file(REMOVE_RECURSE
  "CMakeFiles/prefetch_stream_test.dir/prefetch/stream_test.cc.o"
  "CMakeFiles/prefetch_stream_test.dir/prefetch/stream_test.cc.o.d"
  "prefetch_stream_test"
  "prefetch_stream_test.pdb"
  "prefetch_stream_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prefetch_stream_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
