# Empty dependencies file for prefetch_stream_test.
# This may be replaced when dependencies are built.
