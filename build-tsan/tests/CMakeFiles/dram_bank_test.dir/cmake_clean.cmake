file(REMOVE_RECURSE
  "CMakeFiles/dram_bank_test.dir/dram/bank_test.cc.o"
  "CMakeFiles/dram_bank_test.dir/dram/bank_test.cc.o.d"
  "dram_bank_test"
  "dram_bank_test.pdb"
  "dram_bank_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dram_bank_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
