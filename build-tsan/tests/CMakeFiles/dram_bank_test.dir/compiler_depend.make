# Empty compiler generated dependencies file for dram_bank_test.
# This may be replaced when dependencies are built.
