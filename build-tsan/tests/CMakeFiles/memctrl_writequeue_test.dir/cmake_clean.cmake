file(REMOVE_RECURSE
  "CMakeFiles/memctrl_writequeue_test.dir/memctrl/writequeue_test.cc.o"
  "CMakeFiles/memctrl_writequeue_test.dir/memctrl/writequeue_test.cc.o.d"
  "memctrl_writequeue_test"
  "memctrl_writequeue_test.pdb"
  "memctrl_writequeue_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memctrl_writequeue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
