# Empty compiler generated dependencies file for memctrl_writequeue_test.
# This may be replaced when dependencies are built.
