file(REMOVE_RECURSE
  "CMakeFiles/sim_metrics_test.dir/sim/metrics_test.cc.o"
  "CMakeFiles/sim_metrics_test.dir/sim/metrics_test.cc.o.d"
  "sim_metrics_test"
  "sim_metrics_test.pdb"
  "sim_metrics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_metrics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
