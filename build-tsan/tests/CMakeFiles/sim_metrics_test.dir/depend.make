# Empty dependencies file for sim_metrics_test.
# This may be replaced when dependencies are built.
