# Empty compiler generated dependencies file for padc.
# This may be replaced when dependencies are built.
