file(REMOVE_RECURSE
  "libpadc.a"
)
