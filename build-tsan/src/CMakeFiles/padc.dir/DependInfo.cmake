
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/cache.cc" "src/CMakeFiles/padc.dir/cache/cache.cc.o" "gcc" "src/CMakeFiles/padc.dir/cache/cache.cc.o.d"
  "/root/repo/src/cache/mshr.cc" "src/CMakeFiles/padc.dir/cache/mshr.cc.o" "gcc" "src/CMakeFiles/padc.dir/cache/mshr.cc.o.d"
  "/root/repo/src/cache/replacement.cc" "src/CMakeFiles/padc.dir/cache/replacement.cc.o" "gcc" "src/CMakeFiles/padc.dir/cache/replacement.cc.o.d"
  "/root/repo/src/common/config.cc" "src/CMakeFiles/padc.dir/common/config.cc.o" "gcc" "src/CMakeFiles/padc.dir/common/config.cc.o.d"
  "/root/repo/src/common/random.cc" "src/CMakeFiles/padc.dir/common/random.cc.o" "gcc" "src/CMakeFiles/padc.dir/common/random.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/padc.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/padc.dir/common/stats.cc.o.d"
  "/root/repo/src/core/core.cc" "src/CMakeFiles/padc.dir/core/core.cc.o" "gcc" "src/CMakeFiles/padc.dir/core/core.cc.o.d"
  "/root/repo/src/core/trace.cc" "src/CMakeFiles/padc.dir/core/trace.cc.o" "gcc" "src/CMakeFiles/padc.dir/core/trace.cc.o.d"
  "/root/repo/src/core/trace_file.cc" "src/CMakeFiles/padc.dir/core/trace_file.cc.o" "gcc" "src/CMakeFiles/padc.dir/core/trace_file.cc.o.d"
  "/root/repo/src/dram/address_map.cc" "src/CMakeFiles/padc.dir/dram/address_map.cc.o" "gcc" "src/CMakeFiles/padc.dir/dram/address_map.cc.o.d"
  "/root/repo/src/dram/bank.cc" "src/CMakeFiles/padc.dir/dram/bank.cc.o" "gcc" "src/CMakeFiles/padc.dir/dram/bank.cc.o.d"
  "/root/repo/src/dram/channel.cc" "src/CMakeFiles/padc.dir/dram/channel.cc.o" "gcc" "src/CMakeFiles/padc.dir/dram/channel.cc.o.d"
  "/root/repo/src/dram/dram_system.cc" "src/CMakeFiles/padc.dir/dram/dram_system.cc.o" "gcc" "src/CMakeFiles/padc.dir/dram/dram_system.cc.o.d"
  "/root/repo/src/dram/timing.cc" "src/CMakeFiles/padc.dir/dram/timing.cc.o" "gcc" "src/CMakeFiles/padc.dir/dram/timing.cc.o.d"
  "/root/repo/src/memctrl/accuracy_tracker.cc" "src/CMakeFiles/padc.dir/memctrl/accuracy_tracker.cc.o" "gcc" "src/CMakeFiles/padc.dir/memctrl/accuracy_tracker.cc.o.d"
  "/root/repo/src/memctrl/controller.cc" "src/CMakeFiles/padc.dir/memctrl/controller.cc.o" "gcc" "src/CMakeFiles/padc.dir/memctrl/controller.cc.o.d"
  "/root/repo/src/memctrl/dropping.cc" "src/CMakeFiles/padc.dir/memctrl/dropping.cc.o" "gcc" "src/CMakeFiles/padc.dir/memctrl/dropping.cc.o.d"
  "/root/repo/src/memctrl/policy.cc" "src/CMakeFiles/padc.dir/memctrl/policy.cc.o" "gcc" "src/CMakeFiles/padc.dir/memctrl/policy.cc.o.d"
  "/root/repo/src/prefetch/cdc_prefetcher.cc" "src/CMakeFiles/padc.dir/prefetch/cdc_prefetcher.cc.o" "gcc" "src/CMakeFiles/padc.dir/prefetch/cdc_prefetcher.cc.o.d"
  "/root/repo/src/prefetch/ddpf.cc" "src/CMakeFiles/padc.dir/prefetch/ddpf.cc.o" "gcc" "src/CMakeFiles/padc.dir/prefetch/ddpf.cc.o.d"
  "/root/repo/src/prefetch/fdp.cc" "src/CMakeFiles/padc.dir/prefetch/fdp.cc.o" "gcc" "src/CMakeFiles/padc.dir/prefetch/fdp.cc.o.d"
  "/root/repo/src/prefetch/markov_prefetcher.cc" "src/CMakeFiles/padc.dir/prefetch/markov_prefetcher.cc.o" "gcc" "src/CMakeFiles/padc.dir/prefetch/markov_prefetcher.cc.o.d"
  "/root/repo/src/prefetch/prefetcher.cc" "src/CMakeFiles/padc.dir/prefetch/prefetcher.cc.o" "gcc" "src/CMakeFiles/padc.dir/prefetch/prefetcher.cc.o.d"
  "/root/repo/src/prefetch/stream_prefetcher.cc" "src/CMakeFiles/padc.dir/prefetch/stream_prefetcher.cc.o" "gcc" "src/CMakeFiles/padc.dir/prefetch/stream_prefetcher.cc.o.d"
  "/root/repo/src/prefetch/stride_prefetcher.cc" "src/CMakeFiles/padc.dir/prefetch/stride_prefetcher.cc.o" "gcc" "src/CMakeFiles/padc.dir/prefetch/stride_prefetcher.cc.o.d"
  "/root/repo/src/sim/experiment.cc" "src/CMakeFiles/padc.dir/sim/experiment.cc.o" "gcc" "src/CMakeFiles/padc.dir/sim/experiment.cc.o.d"
  "/root/repo/src/sim/metrics.cc" "src/CMakeFiles/padc.dir/sim/metrics.cc.o" "gcc" "src/CMakeFiles/padc.dir/sim/metrics.cc.o.d"
  "/root/repo/src/sim/parallel.cc" "src/CMakeFiles/padc.dir/sim/parallel.cc.o" "gcc" "src/CMakeFiles/padc.dir/sim/parallel.cc.o.d"
  "/root/repo/src/sim/system.cc" "src/CMakeFiles/padc.dir/sim/system.cc.o" "gcc" "src/CMakeFiles/padc.dir/sim/system.cc.o.d"
  "/root/repo/src/workload/generator.cc" "src/CMakeFiles/padc.dir/workload/generator.cc.o" "gcc" "src/CMakeFiles/padc.dir/workload/generator.cc.o.d"
  "/root/repo/src/workload/mixes.cc" "src/CMakeFiles/padc.dir/workload/mixes.cc.o" "gcc" "src/CMakeFiles/padc.dir/workload/mixes.cc.o.d"
  "/root/repo/src/workload/profile.cc" "src/CMakeFiles/padc.dir/workload/profile.cc.o" "gcc" "src/CMakeFiles/padc.dir/workload/profile.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
