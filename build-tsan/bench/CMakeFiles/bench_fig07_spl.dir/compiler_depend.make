# Empty compiler generated dependencies file for bench_fig07_spl.
# This may be replaced when dependencies are built.
