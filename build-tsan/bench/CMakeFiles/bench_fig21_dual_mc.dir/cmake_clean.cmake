file(REMOVE_RECURSE
  "CMakeFiles/bench_fig21_dual_mc.dir/bench_fig21_dual_mc.cc.o"
  "CMakeFiles/bench_fig21_dual_mc.dir/bench_fig21_dual_mc.cc.o.d"
  "bench_fig21_dual_mc"
  "bench_fig21_dual_mc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig21_dual_mc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
