# Empty compiler generated dependencies file for bench_fig21_dual_mc.
# This may be replaced when dependencies are built.
