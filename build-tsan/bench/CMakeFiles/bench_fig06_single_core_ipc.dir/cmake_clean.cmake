file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_single_core_ipc.dir/bench_fig06_single_core_ipc.cc.o"
  "CMakeFiles/bench_fig06_single_core_ipc.dir/bench_fig06_single_core_ipc.cc.o.d"
  "bench_fig06_single_core_ipc"
  "bench_fig06_single_core_ipc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_single_core_ipc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
