# Empty dependencies file for bench_fig06_single_core_ipc.
# This may be replaced when dependencies are built.
