# Empty compiler generated dependencies file for bench_fig23_rowbuffer_sweep.
# This may be replaced when dependencies are built.
