# Empty dependencies file for bench_fig26_shared_cache.
# This may be replaced when dependencies are built.
