# Empty compiler generated dependencies file for bench_fig32_runahead.
# This may be replaced when dependencies are built.
