file(REMOVE_RECURSE
  "CMakeFiles/bench_fig32_runahead.dir/bench_fig32_runahead.cc.o"
  "CMakeFiles/bench_fig32_runahead.dir/bench_fig32_runahead.cc.o.d"
  "bench_fig32_runahead"
  "bench_fig32_runahead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig32_runahead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
