# Empty dependencies file for bench_fig31_permutation.
# This may be replaced when dependencies are built.
