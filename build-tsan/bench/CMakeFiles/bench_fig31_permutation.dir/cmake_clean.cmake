file(REMOVE_RECURSE
  "CMakeFiles/bench_fig31_permutation.dir/bench_fig31_permutation.cc.o"
  "CMakeFiles/bench_fig31_permutation.dir/bench_fig31_permutation.cc.o.d"
  "bench_fig31_permutation"
  "bench_fig31_permutation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig31_permutation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
