file(REMOVE_RECURSE
  "CMakeFiles/bench_tab09_identical.dir/bench_tab09_identical.cc.o"
  "CMakeFiles/bench_tab09_identical.dir/bench_tab09_identical.cc.o.d"
  "bench_tab09_identical"
  "bench_tab09_identical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab09_identical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
