# Empty compiler generated dependencies file for bench_tab09_identical.
# This may be replaced when dependencies are built.
