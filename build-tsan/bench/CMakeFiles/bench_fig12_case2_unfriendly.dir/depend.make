# Empty dependencies file for bench_fig12_case2_unfriendly.
# This may be replaced when dependencies are built.
