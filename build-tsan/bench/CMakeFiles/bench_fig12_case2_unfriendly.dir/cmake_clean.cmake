file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_case2_unfriendly.dir/bench_fig12_case2_unfriendly.cc.o"
  "CMakeFiles/bench_fig12_case2_unfriendly.dir/bench_fig12_case2_unfriendly.cc.o.d"
  "bench_fig12_case2_unfriendly"
  "bench_fig12_case2_unfriendly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_case2_unfriendly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
