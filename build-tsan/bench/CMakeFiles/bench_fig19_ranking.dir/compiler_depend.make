# Empty compiler generated dependencies file for bench_fig19_ranking.
# This may be replaced when dependencies are built.
