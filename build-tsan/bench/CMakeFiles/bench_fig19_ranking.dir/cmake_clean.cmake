file(REMOVE_RECURSE
  "CMakeFiles/bench_fig19_ranking.dir/bench_fig19_ranking.cc.o"
  "CMakeFiles/bench_fig19_ranking.dir/bench_fig19_ranking.cc.o.d"
  "bench_fig19_ranking"
  "bench_fig19_ranking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_ranking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
