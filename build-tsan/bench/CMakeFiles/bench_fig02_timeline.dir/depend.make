# Empty dependencies file for bench_fig02_timeline.
# This may be replaced when dependencies are built.
