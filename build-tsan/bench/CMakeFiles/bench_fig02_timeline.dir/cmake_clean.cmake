file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_timeline.dir/bench_fig02_timeline.cc.o"
  "CMakeFiles/bench_fig02_timeline.dir/bench_fig02_timeline.cc.o.d"
  "bench_fig02_timeline"
  "bench_fig02_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
