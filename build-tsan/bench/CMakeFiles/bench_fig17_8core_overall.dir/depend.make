# Empty dependencies file for bench_fig17_8core_overall.
# This may be replaced when dependencies are built.
