# Empty compiler generated dependencies file for bench_tab08_urgency.
# This may be replaced when dependencies are built.
