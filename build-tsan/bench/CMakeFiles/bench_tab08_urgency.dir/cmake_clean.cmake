file(REMOVE_RECURSE
  "CMakeFiles/bench_tab08_urgency.dir/bench_tab08_urgency.cc.o"
  "CMakeFiles/bench_tab08_urgency.dir/bench_tab08_urgency.cc.o.d"
  "bench_tab08_urgency"
  "bench_tab08_urgency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab08_urgency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
