file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_case3_mixed.dir/bench_fig14_case3_mixed.cc.o"
  "CMakeFiles/bench_fig14_case3_mixed.dir/bench_fig14_case3_mixed.cc.o.d"
  "bench_fig14_case3_mixed"
  "bench_fig14_case3_mixed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_case3_mixed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
