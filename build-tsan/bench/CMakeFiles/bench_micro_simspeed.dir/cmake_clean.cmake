file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_simspeed.dir/bench_micro_simspeed.cc.o"
  "CMakeFiles/bench_micro_simspeed.dir/bench_micro_simspeed.cc.o.d"
  "bench_micro_simspeed"
  "bench_micro_simspeed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_simspeed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
