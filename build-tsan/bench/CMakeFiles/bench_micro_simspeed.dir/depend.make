# Empty dependencies file for bench_micro_simspeed.
# This may be replaced when dependencies are built.
