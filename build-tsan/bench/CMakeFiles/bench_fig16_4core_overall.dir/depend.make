# Empty dependencies file for bench_fig16_4core_overall.
# This may be replaced when dependencies are built.
