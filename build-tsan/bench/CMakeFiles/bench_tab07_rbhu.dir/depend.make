# Empty dependencies file for bench_tab07_rbhu.
# This may be replaced when dependencies are built.
