file(REMOVE_RECURSE
  "CMakeFiles/bench_tab07_rbhu.dir/bench_tab07_rbhu.cc.o"
  "CMakeFiles/bench_tab07_rbhu.dir/bench_tab07_rbhu.cc.o.d"
  "bench_tab07_rbhu"
  "bench_tab07_rbhu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab07_rbhu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
