# Empty dependencies file for bench_fig25_cache_sweep.
# This may be replaced when dependencies are built.
