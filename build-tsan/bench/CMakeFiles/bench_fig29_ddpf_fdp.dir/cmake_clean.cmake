file(REMOVE_RECURSE
  "CMakeFiles/bench_fig29_ddpf_fdp.dir/bench_fig29_ddpf_fdp.cc.o"
  "CMakeFiles/bench_fig29_ddpf_fdp.dir/bench_fig29_ddpf_fdp.cc.o.d"
  "bench_fig29_ddpf_fdp"
  "bench_fig29_ddpf_fdp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig29_ddpf_fdp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
