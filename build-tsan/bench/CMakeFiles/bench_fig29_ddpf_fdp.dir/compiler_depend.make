# Empty compiler generated dependencies file for bench_fig29_ddpf_fdp.
# This may be replaced when dependencies are built.
