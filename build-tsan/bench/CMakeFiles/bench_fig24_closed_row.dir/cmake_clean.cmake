file(REMOVE_RECURSE
  "CMakeFiles/bench_fig24_closed_row.dir/bench_fig24_closed_row.cc.o"
  "CMakeFiles/bench_fig24_closed_row.dir/bench_fig24_closed_row.cc.o.d"
  "bench_fig24_closed_row"
  "bench_fig24_closed_row.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig24_closed_row.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
