# Empty compiler generated dependencies file for bench_fig24_closed_row.
# This may be replaced when dependencies are built.
