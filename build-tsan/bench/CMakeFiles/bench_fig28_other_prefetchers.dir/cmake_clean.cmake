file(REMOVE_RECURSE
  "CMakeFiles/bench_fig28_other_prefetchers.dir/bench_fig28_other_prefetchers.cc.o"
  "CMakeFiles/bench_fig28_other_prefetchers.dir/bench_fig28_other_prefetchers.cc.o.d"
  "bench_fig28_other_prefetchers"
  "bench_fig28_other_prefetchers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig28_other_prefetchers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
