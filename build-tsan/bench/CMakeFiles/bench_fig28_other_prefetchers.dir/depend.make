# Empty dependencies file for bench_fig28_other_prefetchers.
# This may be replaced when dependencies are built.
