# Empty compiler generated dependencies file for bench_fig08_bus_traffic.
# This may be replaced when dependencies are built.
