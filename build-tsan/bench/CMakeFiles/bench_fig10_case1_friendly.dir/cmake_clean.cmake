file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_case1_friendly.dir/bench_fig10_case1_friendly.cc.o"
  "CMakeFiles/bench_fig10_case1_friendly.dir/bench_fig10_case1_friendly.cc.o.d"
  "bench_fig10_case1_friendly"
  "bench_fig10_case1_friendly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_case1_friendly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
