# Empty compiler generated dependencies file for bench_fig10_case1_friendly.
# This may be replaced when dependencies are built.
