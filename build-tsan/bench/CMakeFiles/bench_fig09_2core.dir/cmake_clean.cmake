file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_2core.dir/bench_fig09_2core.cc.o"
  "CMakeFiles/bench_fig09_2core.dir/bench_fig09_2core.cc.o.d"
  "bench_fig09_2core"
  "bench_fig09_2core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_2core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
