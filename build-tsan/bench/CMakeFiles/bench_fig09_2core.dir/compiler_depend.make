# Empty compiler generated dependencies file for bench_fig09_2core.
# This may be replaced when dependencies are built.
