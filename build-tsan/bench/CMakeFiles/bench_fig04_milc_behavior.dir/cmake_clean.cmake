file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_milc_behavior.dir/bench_fig04_milc_behavior.cc.o"
  "CMakeFiles/bench_fig04_milc_behavior.dir/bench_fig04_milc_behavior.cc.o.d"
  "bench_fig04_milc_behavior"
  "bench_fig04_milc_behavior.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_milc_behavior.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
