# Empty compiler generated dependencies file for bench_fig04_milc_behavior.
# This may be replaced when dependencies are built.
