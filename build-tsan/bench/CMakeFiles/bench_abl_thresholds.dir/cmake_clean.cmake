file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_thresholds.dir/bench_abl_thresholds.cc.o"
  "CMakeFiles/bench_abl_thresholds.dir/bench_abl_thresholds.cc.o.d"
  "bench_abl_thresholds"
  "bench_abl_thresholds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_thresholds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
