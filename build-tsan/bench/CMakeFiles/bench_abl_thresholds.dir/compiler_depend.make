# Empty compiler generated dependencies file for bench_abl_thresholds.
# This may be replaced when dependencies are built.
