# Empty dependencies file for bench_fig01_rigid_policies.
# This may be replaced when dependencies are built.
