# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build-tsan/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(perf_smoke "/root/repo/build-tsan/bench/bench_micro_simspeed" "--benchmark_filter=BM_ScheduleRead|BM_ParallelSweep" "--benchmark_min_time=0.02" "--benchmark_out=/root/repo/build-tsan/BENCH_simspeed.json" "--benchmark_out_format=json")
set_tests_properties(perf_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;43;add_test;/root/repo/bench/CMakeLists.txt;0;")
