/**
 * @file
 * Policy shootout on a user-chosen multiprogrammed mix: runs every
 * prefetch-handling policy on the same workload combination and prints
 * per-application speedups, system metrics, and the bus-traffic
 * breakdown -- the full paper-style evaluation for one mix.
 *
 * Usage: policy_shootout [profile ...]
 *        (default: the paper's mixed case study; core count = number of
 *        profiles given, up to 8)
 */

#include <cstdio>
#include <string>
#include <vector>

#include "sim/experiment.hh"
#include "workload/mixes.hh"
#include "workload/profile.hh"

int
main(int argc, char **argv)
{
    using namespace padc;

    workload::Mix mix;
    for (int i = 1; i < argc && i <= 8; ++i) {
        if (workload::findProfile(argv[i]) == nullptr) {
            std::fprintf(stderr, "unknown profile '%s'\n", argv[i]);
            return 1;
        }
        mix.push_back(argv[i]);
    }
    if (mix.empty())
        mix = workload::caseStudyMixed();

    const auto cores = static_cast<std::uint32_t>(mix.size());
    const sim::SystemConfig base = sim::SystemConfig::baseline(cores);
    sim::RunOptions options;
    options.instructions = 150000;
    options.warmup = 30000;
    sim::AloneIpcCache alone(base, options);

    std::printf("policy shootout on a %u-core system\nmix:", cores);
    for (const auto &name : mix)
        std::printf(" %s(class %d)", name.c_str(),
                    workload::findProfile(name)->cls);
    std::printf("\n\n%-22s", "policy");
    for (std::uint32_t c = 0; c < cores; ++c)
        std::printf("   IS.c%u", c);
    std::printf(" %7s %7s %6s %9s %9s\n", "WS", "HS", "UF", "traffic",
                "useless");

    const sim::PolicySetup setups[] = {
        sim::PolicySetup::NoPref,          sim::PolicySetup::DemandFirst,
        sim::PolicySetup::DemandPrefEqual, sim::PolicySetup::PrefetchFirst,
        sim::PolicySetup::ApsOnly,         sim::PolicySetup::Padc,
        sim::PolicySetup::PadcRank,
    };
    for (const auto setup : setups) {
        const auto eval = sim::evaluateMix(sim::applyPolicy(base, setup),
                                           mix, options, alone);
        std::printf("%-22s", sim::policyLabel(setup).c_str());
        for (const double is : eval.summary.speedups)
            std::printf(" %7.3f", is);
        std::printf(" %7.3f %7.3f %6.2f %9llu %9llu\n", eval.summary.ws,
                    eval.summary.hs, eval.summary.uf,
                    static_cast<unsigned long long>(
                        eval.metrics.totalTraffic()),
                    static_cast<unsigned long long>(
                        eval.metrics.trafficPrefUseless()));
    }
    return 0;
}
