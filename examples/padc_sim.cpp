/**
 * @file
 * padc_sim: the full command-line face of the library. Configure the
 * CMP, DRAM, prefetcher, and policy from flags, run any workload mix,
 * and get the paper's metrics plus a complete raw statistics dump.
 *
 * Usage:
 *   padc_sim [options] [profile ...]
 *
 * Options:
 *   --policy P        no-pref | demand-first | demand-pref-equal |
 *                     prefetch-first | aps | padc | padc-rank
 *                     (default padc)
 *   --prefetcher P    stream | stride | cdc | markov | none
 *   --instructions N  per-core retire target (default 200000)
 *   --warmup N        per-core warm-up instructions (default N/4)
 *   --channels N      memory controllers (default 1)
 *   --row-kb N        DRAM row-buffer size in KB (default 4)
 *   --l2-kb N         per-core L2 size in KB (default paper baseline)
 *   --shared-l2       one shared L2 instead of private ones
 *   --closed-row      closed-row buffer management
 *   --runahead        enable runahead execution
 *   --ddpf / --fdp    enable the Section 6.12 mechanisms
 *   --seed N          workload seed salt (default 0)
 *   --stats           dump the full raw statistics set
 *   --record FILE N   capture N trace ops of the first profile to FILE
 *                     (PADCTRC1 format) and exit
 *   --replay FILE     drive core 0 from a recorded trace file instead
 *                     of its profile generator
 *   --list            list available workload profiles and exit
 *
 * Profiles default to the paper's mixed case study when omitted; the
 * core count equals the number of profiles (max 16).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/trace_file.hh"
#include "sim/experiment.hh"
#include "sim/metrics.hh"
#include "workload/mixes.hh"
#include "workload/profile.hh"

namespace
{

using namespace padc;

struct Options
{
    std::string policy = "padc";
    std::string prefetcher = "stream";
    std::uint64_t instructions = 200000;
    std::uint64_t warmup = 0;
    bool warmup_set = false;
    std::uint32_t channels = 1;
    std::uint32_t row_kb = 4;
    std::uint64_t l2_kb = 0;
    bool shared_l2 = false;
    bool closed_row = false;
    bool runahead = false;
    bool ddpf = false;
    bool fdp = false;
    std::uint64_t seed = 0;
    bool dump_stats = false;
    std::string record_path;
    std::uint64_t record_ops = 0;
    std::string replay_path;
    workload::Mix mix;
};

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [options] [profile ...]\n"
                 "run '%s --list' for profile names; see the file "
                 "comment for options\n",
                 argv0, argv0);
    return 2;
}

bool
parse(int argc, char **argv, Options *opt)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--policy") {
            opt->policy = next("--policy");
        } else if (arg == "--prefetcher") {
            opt->prefetcher = next("--prefetcher");
        } else if (arg == "--instructions") {
            opt->instructions = std::strtoull(next(arg.c_str()), nullptr, 10);
        } else if (arg == "--warmup") {
            opt->warmup = std::strtoull(next(arg.c_str()), nullptr, 10);
            opt->warmup_set = true;
        } else if (arg == "--channels") {
            opt->channels = static_cast<std::uint32_t>(
                std::strtoul(next(arg.c_str()), nullptr, 10));
        } else if (arg == "--row-kb") {
            opt->row_kb = static_cast<std::uint32_t>(
                std::strtoul(next(arg.c_str()), nullptr, 10));
        } else if (arg == "--l2-kb") {
            opt->l2_kb = std::strtoull(next(arg.c_str()), nullptr, 10);
        } else if (arg == "--shared-l2") {
            opt->shared_l2 = true;
        } else if (arg == "--closed-row") {
            opt->closed_row = true;
        } else if (arg == "--runahead") {
            opt->runahead = true;
        } else if (arg == "--ddpf") {
            opt->ddpf = true;
        } else if (arg == "--fdp") {
            opt->fdp = true;
        } else if (arg == "--seed") {
            opt->seed = std::strtoull(next(arg.c_str()), nullptr, 10);
        } else if (arg == "--stats") {
            opt->dump_stats = true;
        } else if (arg == "--record") {
            opt->record_path = next("--record");
            opt->record_ops =
                std::strtoull(next("--record"), nullptr, 10);
        } else if (arg == "--replay") {
            opt->replay_path = next("--replay");
        } else if (arg == "--list") {
            for (const auto &profile : workload::allProfiles()) {
                std::printf("%-16s class %d\n", profile.name.c_str(),
                            profile.cls);
            }
            std::exit(0);
        } else if (arg.rfind("--", 0) == 0) {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            return false;
        } else {
            if (workload::findProfile(arg) == nullptr) {
                std::fprintf(stderr,
                             "unknown profile '%s' (try --list)\n",
                             arg.c_str());
                return false;
            }
            opt->mix.push_back(arg);
        }
    }
    if (opt->mix.empty())
        opt->mix = workload::caseStudyMixed();
    if (opt->mix.size() > 16) {
        std::fprintf(stderr, "at most 16 profiles\n");
        return false;
    }
    if (!opt->warmup_set)
        opt->warmup = opt->instructions / 4;
    return true;
}

sim::PolicySetup
policyOf(const std::string &name)
{
    if (name == "no-pref")
        return sim::PolicySetup::NoPref;
    if (name == "demand-first")
        return sim::PolicySetup::DemandFirst;
    if (name == "demand-pref-equal" || name == "frfcfs")
        return sim::PolicySetup::DemandPrefEqual;
    if (name == "prefetch-first")
        return sim::PolicySetup::PrefetchFirst;
    if (name == "aps")
        return sim::PolicySetup::ApsOnly;
    if (name == "padc-rank")
        return sim::PolicySetup::PadcRank;
    if (name == "padc")
        return sim::PolicySetup::Padc;
    std::fprintf(stderr, "unknown policy '%s'\n", name.c_str());
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    if (!parse(argc, argv, &opt))
        return usage(argv[0]);

    const auto cores = static_cast<std::uint32_t>(opt.mix.size());
    sim::SystemConfig cfg = sim::applyPolicy(
        sim::SystemConfig::baseline(cores), policyOf(opt.policy));

    PrefetcherKind kind{};
    if (!parsePrefetcher(opt.prefetcher, &kind)) {
        std::fprintf(stderr, "unknown prefetcher '%s'\n",
                     opt.prefetcher.c_str());
        return 2;
    }
    cfg.prefetcher.kind = kind;
    if (kind == PrefetcherKind::None)
        cfg.prefetch_enabled = false;

    cfg.dram.geometry.channels = opt.channels;
    cfg.dram.geometry.row_bytes = opt.row_kb * 1024;
    if (opt.l2_kb != 0)
        cfg.l2.size_bytes = opt.l2_kb * 1024;
    if (opt.shared_l2) {
        cfg.shared_l2 = true;
        cfg.l2.size_bytes *= cores;
        cfg.l2.ways *= std::max(1u, cores / 2);
        cfg.mshr_per_l2 = cfg.sched.request_buffer_size;
    }
    if (opt.closed_row)
        cfg.sched.row_policy = RowPolicy::Closed;
    cfg.core.runahead = opt.runahead;
    cfg.ddpf_enabled = opt.ddpf;
    cfg.fdp_enabled = opt.fdp;

    if (!cfg.dram.geometry.valid() || !cfg.l1.valid() || !cfg.l2.valid()) {
        std::fprintf(stderr, "invalid configuration (sizes must be "
                             "powers of two)\n");
        return 2;
    }

    sim::RunOptions run;
    run.instructions = opt.instructions;
    run.warmup = opt.warmup;
    run.mix_seed = opt.seed;

    if (!opt.record_path.empty()) {
        workload::SyntheticTrace generator(
            workload::traceParamsFor(opt.mix, 0, run.mix_seed));
        const auto ops =
            core::captureTrace(generator, opt.record_ops);
        if (!core::writeTraceFile(opt.record_path, ops)) {
            std::fprintf(stderr, "cannot write %s\n",
                         opt.record_path.c_str());
            return 1;
        }
        std::printf("recorded %zu ops of %s to %s\n", ops.size(),
                    opt.mix[0].c_str(), opt.record_path.c_str());
        return 0;
    }

    // Build traces and run through the public System API so --stats can
    // inspect the live system afterwards.
    std::unique_ptr<core::FileTrace> replay;
    if (!opt.replay_path.empty()) {
        replay = std::make_unique<core::FileTrace>(opt.replay_path);
        if (!replay->ok()) {
            std::fprintf(stderr, "cannot load trace %s\n",
                         opt.replay_path.c_str());
            return 1;
        }
    }
    std::vector<std::unique_ptr<workload::SyntheticTrace>> traces;
    std::vector<core::TraceSource *> sources;
    for (std::uint32_t c = 0; c < cores; ++c) {
        if (c == 0 && replay != nullptr) {
            sources.push_back(replay.get());
            continue;
        }
        traces.push_back(std::make_unique<workload::SyntheticTrace>(
            workload::traceParamsFor(opt.mix, c, run.mix_seed)));
        sources.push_back(traces.back().get());
    }
    sim::System system(cfg, std::move(sources));
    system.run(run.instructions, run.max_cycles, run.warmup);
    const sim::RunMetrics metrics = sim::collectMetrics(system);

    std::printf("padc_sim: %u cores, policy %s, prefetcher %s, "
                "%u channel(s), %uKB rows\n",
                cores, opt.policy.c_str(), opt.prefetcher.c_str(),
                opt.channels, opt.row_kb);
    std::printf("%-6s %-16s %8s %8s %8s %6s %6s %6s %6s\n", "core",
                "profile", "IPC", "MPKI", "SPL", "ACC", "COV", "RBH",
                "RBHU");
    for (std::uint32_t c = 0; c < cores; ++c) {
        const auto &m = metrics.cores[c];
        std::printf("%-6u %-16s %8.3f %8.2f %8.1f %6.2f %6.2f %6.2f "
                    "%6.2f\n",
                    c, opt.mix[c].c_str(), m.ipc, m.mpki, m.spl, m.acc,
                    m.cov, m.rbh, m.rbhu);
    }
    std::printf("\nbus traffic (lines): demand %llu, useful prefetch "
                "%llu, useless prefetch %llu, writeback %llu, total "
                "%llu\n",
                static_cast<unsigned long long>(metrics.trafficDemand()),
                static_cast<unsigned long long>(
                    metrics.trafficPrefUseful()),
                static_cast<unsigned long long>(
                    metrics.trafficPrefUseless()),
                static_cast<unsigned long long>(
                    metrics.trafficWriteback()),
                static_cast<unsigned long long>(metrics.totalTraffic()));

    if (opt.dump_stats) {
        std::printf("\n-- raw statistics --\n%s",
                    system.exportStats().toString().c_str());
    }
    return 0;
}
