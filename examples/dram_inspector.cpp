/**
 * @file
 * DRAM device inspector: drives the raw DRAM substrate (address map,
 * banks, channel timing) directly through the public API -- no cores,
 * no caches -- and reports the latency of the three access classes plus
 * the streaming bandwidth of the device. A sanity tool for anyone
 * adapting the DRAM model, and a living document of its timing.
 *
 * Usage: dram_inspector
 */

#include <cstdio>

#include "dram/address_map.hh"
#include "dram/channel.hh"

int
main()
{
    using namespace padc;
    dram::TimingParams timing;
    dram::Geometry geometry;
    dram::AddressMap map(geometry);
    dram::Channel channel(timing, geometry.banks_per_channel);

    std::printf("DRAM device: %u banks, %u B rows, %u:1 cpu:dram clock\n",
                geometry.banks_per_channel, geometry.row_bytes,
                timing.cpu_per_dram_cycle);

    auto dram_aligned = [&](Cycle t) {
        const Cycle step = timing.cpu_per_dram_cycle;
        return (t + step - 1) / step * step;
    };

    // Row-closed access: ACT + RD.
    Cycle t = 0;
    channel.activate(0, 1, t);
    Cycle col = dram_aligned(t + timing.toCpu(timing.tRCD));
    const Cycle closed_latency = channel.column(0, false, false, col) - t;
    std::printf("row-closed read latency:   %4llu cycles "
                "(tRCD + tCL + tBURST)\n",
                static_cast<unsigned long long>(closed_latency));

    // Row-hit access: RD only.
    t = dram_aligned(col + timing.toCpu(timing.tCCD));
    while (!channel.canColumn(0, false, t))
        t += timing.cpu_per_dram_cycle;
    const Cycle hit_latency = channel.column(0, false, false, t) - t;
    std::printf("row-hit read latency:      %4llu cycles "
                "(tCL + tBURST)\n",
                static_cast<unsigned long long>(hit_latency));

    // Row-conflict access: PRE + ACT + RD.
    t = dram_aligned(t + timing.toCpu(64));
    while (!channel.canPrecharge(0, t))
        t += timing.cpu_per_dram_cycle;
    const Cycle conflict_start = t;
    channel.precharge(0, t);
    while (!channel.canActivate(0, t))
        t += timing.cpu_per_dram_cycle;
    channel.activate(0, 2, t);
    while (!channel.canColumn(0, false, t))
        t += timing.cpu_per_dram_cycle;
    const Cycle conflict_latency =
        channel.column(0, false, false, t) - conflict_start;
    std::printf("row-conflict read latency: %4llu cycles "
                "(tRP + tRCD + tCL + tBURST)\n",
                static_cast<unsigned long long>(conflict_latency));
    std::printf("conflict / hit ratio: %.2f (paper cites ~3x)\n\n",
                static_cast<double>(conflict_latency) /
                    static_cast<double>(hit_latency));

    // Streaming bandwidth: row-hit reads across all banks.
    const int lines = 512;
    Cycle start = dram_aligned(t + timing.toCpu(64));
    for (std::uint32_t bank = 1; bank < geometry.banks_per_channel;
         ++bank) {
        while (!channel.canActivate(bank, start))
            start += timing.cpu_per_dram_cycle;
        channel.activate(bank, 1, start);
    }
    Cycle now = start;
    Cycle last_data = start;
    int issued = 0;
    std::uint32_t bank = 0;
    while (issued < lines) {
        if (channel.canColumn(bank, false, now)) {
            last_data = channel.column(bank, false, false, now);
            ++issued;
            bank = (bank + 1) % geometry.banks_per_channel;
        }
        now += timing.cpu_per_dram_cycle;
    }
    const double cycles_per_line =
        static_cast<double>(last_data - start) / lines;
    std::printf("streaming throughput: %.1f cycles per 64B line "
                "(bus floor: %u)\n",
                cycles_per_line,
                timing.cpu_per_dram_cycle *
                    std::max(timing.tBURST, timing.tCCD));

    // Address-map demo.
    std::printf("\naddress map (line interleave):\n");
    for (Addr addr = 0; addr < 5 * kLineBytes; addr += kLineBytes) {
        const dram::DramCoord c = map.map(addr);
        std::printf("  0x%06llx -> channel %u bank %u row %llu col %u\n",
                    static_cast<unsigned long long>(addr), c.channel,
                    c.bank, static_cast<unsigned long long>(c.row),
                    c.col);
    }
    return 0;
}
