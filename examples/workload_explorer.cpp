/**
 * @file
 * Workload explorer: prints a Table-5-style characterization of every
 * registered benchmark profile on the single-core baseline -- IPC and
 * MPKI without prefetching, then IPC, MPKI, RBH, ACC, and COV with the
 * stream prefetcher under the demand-first policy, plus the speedups of
 * the rigid policies and PADC over no-prefetching.
 *
 * Use this to see how the synthetic stand-ins land relative to the
 * paper's benchmark classes (and to re-tune profiles).
 *
 * Usage: workload_explorer [instructions-per-run]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "sim/experiment.hh"
#include "workload/profile.hh"

int
main(int argc, char **argv)
{
    using namespace padc;

    sim::RunOptions options;
    options.instructions =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 300000;
    options.warmup = options.instructions / 2;

    const sim::SystemConfig base = sim::SystemConfig::baseline(1);

    std::printf("%-16s %3s | %6s %6s | %6s %6s %5s %5s %5s | %7s %7s %7s\n",
                "profile", "cls", "IPCnp", "MPKInp", "IPCdf", "MPKIdf",
                "RBH", "ACC", "COV", "df/np", "eq/np", "padc/np");

    for (const auto &profile : workload::allProfiles()) {
        const workload::Mix mix = {profile.name};

        const auto np = sim::runMix(
            sim::applyPolicy(base, sim::PolicySetup::NoPref), mix, options);
        const auto df = sim::runMix(
            sim::applyPolicy(base, sim::PolicySetup::DemandFirst), mix,
            options);
        const auto eq = sim::runMix(
            sim::applyPolicy(base, sim::PolicySetup::DemandPrefEqual), mix,
            options);
        const auto padc = sim::runMix(
            sim::applyPolicy(base, sim::PolicySetup::Padc), mix, options);

        const auto &n = np.cores[0];
        const auto &d = df.cores[0];
        std::printf(
            "%-16s %3d | %6.2f %6.2f | %6.2f %6.2f %5.2f %5.2f %5.2f |"
            " %7.3f %7.3f %7.3f\n",
            profile.name.c_str(), profile.cls, n.ipc, n.mpki, d.ipc,
            d.mpki, d.rbh, d.acc, d.cov, d.ipc / n.ipc,
            eq.cores[0].ipc / n.ipc, padc.cores[0].ipc / n.ipc);
    }
    return 0;
}
