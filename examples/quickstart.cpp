/**
 * @file
 * Quickstart: simulate one benchmark on a single-core system under the
 * paper's five prefetch-handling policies and print the headline
 * metrics. This is the smallest end-to-end use of the public API:
 *
 *   config -> policy -> runMix -> metrics
 *
 * Usage: quickstart [profile-name] (default: libquantum_06)
 */

#include <cstdio>
#include <string>

#include "sim/experiment.hh"
#include "workload/profile.hh"

int
main(int argc, char **argv)
{
    using namespace padc;

    const std::string profile =
        argc > 1 ? argv[1] : std::string("libquantum_06");
    if (workload::findProfile(profile) == nullptr) {
        std::fprintf(stderr, "unknown profile '%s'; known profiles:\n",
                     profile.c_str());
        for (const auto &name : workload::allProfileNames())
            std::fprintf(stderr, "  %s\n", name.c_str());
        return 1;
    }

    sim::SystemConfig base = sim::SystemConfig::baseline(1);
    sim::RunOptions options;
    options.instructions = 200000;

    const workload::Mix mix = {profile};

    std::printf("PADC quickstart: %s on a 1-core system, %llu instrs\n\n",
                profile.c_str(),
                static_cast<unsigned long long>(options.instructions));
    std::printf("%-22s %8s %8s %8s %8s %8s %10s\n", "policy", "IPC",
                "MPKI", "SPL", "ACC", "COV", "traffic");

    const sim::PolicySetup setups[] = {
        sim::PolicySetup::NoPref,       sim::PolicySetup::DemandFirst,
        sim::PolicySetup::DemandPrefEqual, sim::PolicySetup::ApsOnly,
        sim::PolicySetup::Padc,
    };
    for (const auto setup : setups) {
        const sim::SystemConfig cfg = sim::applyPolicy(base, setup);
        const sim::RunMetrics metrics = sim::runMix(cfg, mix, options);
        const auto &m = metrics.cores[0];
        std::printf("%-22s %8.3f %8.2f %8.1f %8.2f %8.2f %10llu\n",
                    sim::policyLabel(setup).c_str(), m.ipc, m.mpki, m.spl,
                    m.acc, m.cov,
                    static_cast<unsigned long long>(
                        metrics.totalTraffic()));
    }

    std::printf("\nRead DESIGN.md for the full system inventory and\n"
                "EXPERIMENTS.md for the paper-reproduction index.\n");
    return 0;
}
