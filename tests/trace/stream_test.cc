/**
 * @file
 * Unit tests for StreamingFileTrace: block-by-block replay equals the
 * whole-file decode, looping, reset reproducibility, and both backing
 * formats.
 */

#include <gtest/gtest.h>

#include <unistd.h>
#include <cstdio>

#include "core/trace_file.hh"
#include "trace/format.hh"
#include "trace/stream.hh"
#include "workload/generator.hh"

namespace padc::trace
{
namespace
{

class StreamTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path_ = ::testing::TempDir() + "padc_stream_test." +
                std::to_string(::getpid()) + ".trc";
    }

    void
    TearDown() override
    {
        std::remove(path_.c_str());
    }

    static std::vector<core::TraceOp>
    generatedOps(std::uint64_t count)
    {
        workload::TraceParams params;
        params.seed = 99;
        workload::SyntheticTrace generator(params);
        std::vector<core::TraceOp> ops;
        for (std::uint64_t i = 0; i < count; ++i)
            ops.push_back(generator.next());
        return ops;
    }

    std::string path_;
};

void
expectOpEq(const core::TraceOp &a, const core::TraceOp &b, std::size_t i)
{
    ASSERT_EQ(a.addr, b.addr) << "op " << i;
    ASSERT_EQ(a.pc, b.pc) << "op " << i;
    ASSERT_EQ(a.compute_gap, b.compute_gap) << "op " << i;
    ASSERT_EQ(a.is_load, b.is_load) << "op " << i;
    ASSERT_EQ(a.dependent, b.dependent) << "op " << i;
}

TEST_F(StreamTest, StreamMatchesWholeFileDecode)
{
    const auto ops = generatedOps(3000);
    std::string error;
    // Small blocks so the stream crosses many block boundaries.
    ASSERT_TRUE(writeTraceFileV2(path_, ops, &error, 128)) << error;

    StreamingFileTrace trace(path_);
    ASSERT_TRUE(trace.ok()) << trace.error();
    EXPECT_EQ(trace.size(), ops.size());
    EXPECT_EQ(trace.format(), TraceFormat::V2);
    for (std::size_t i = 0; i < ops.size(); ++i)
        expectOpEq(trace.next(), ops[i], i);
}

TEST_F(StreamTest, LoopsAtEndOfTrace)
{
    const auto ops = generatedOps(300);
    std::string error;
    ASSERT_TRUE(writeTraceFileV2(path_, ops, &error, 64)) << error;

    StreamingFileTrace trace(path_);
    ASSERT_TRUE(trace.ok()) << trace.error();
    for (std::size_t i = 0; i < 2 * ops.size() + 17; ++i)
        expectOpEq(trace.next(), ops[i % ops.size()], i);
    EXPECT_TRUE(trace.error().empty());
}

TEST_F(StreamTest, ResetReproducesExactly)
{
    const auto ops = generatedOps(1000);
    std::string error;
    ASSERT_TRUE(writeTraceFileV2(path_, ops, &error, 128)) << error;

    StreamingFileTrace trace(path_);
    ASSERT_TRUE(trace.ok()) << trace.error();
    std::vector<core::TraceOp> first;
    for (int i = 0; i < 700; ++i)
        first.push_back(trace.next());
    trace.reset();
    for (std::size_t i = 0; i < first.size(); ++i)
        expectOpEq(trace.next(), first[i], i);
}

TEST_F(StreamTest, StreamsV1FilesToo)
{
    const auto ops = generatedOps(500);
    std::string error;
    ASSERT_TRUE(core::writeTraceFile(path_, ops, &error)) << error;

    StreamingFileTrace trace(path_);
    ASSERT_TRUE(trace.ok()) << trace.error();
    EXPECT_EQ(trace.format(), TraceFormat::V1);
    EXPECT_EQ(trace.size(), ops.size());
    for (std::size_t i = 0; i < ops.size() + 10; ++i)
        expectOpEq(trace.next(), ops[i % ops.size()], i);
}

TEST_F(StreamTest, MissingFileNotOk)
{
    StreamingFileTrace trace("/nonexistent/padc.trc");
    EXPECT_FALSE(trace.ok());
    EXPECT_FALSE(trace.error().empty());
}

TEST_F(StreamTest, EmptyTraceNotOk)
{
    std::string error;
    ASSERT_TRUE(writeTraceFileV2(path_, {}, &error)) << error;
    StreamingFileTrace trace(path_);
    EXPECT_FALSE(trace.ok()); // empty traces cannot drive a core
    EXPECT_NE(trace.error().find("no operations"), std::string::npos)
        << trace.error();
}

TEST_F(StreamTest, SingleOpTraceLoopsOnItself)
{
    const std::vector<core::TraceOp> ops = {
        {5, 0x1000, 0x400, true, false}};
    std::string error;
    ASSERT_TRUE(writeTraceFileV2(path_, ops, &error)) << error;
    StreamingFileTrace trace(path_);
    ASSERT_TRUE(trace.ok()) << trace.error();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(trace.next().addr, 0x1000u);
}

} // namespace
} // namespace padc::trace
