/**
 * @file
 * The corpus subsystem's end-to-end contract: a trace captured from
 * the synthetic generator and replayed through an experiment
 * reproduces the generator-driven run bit-identically -- every
 * exported statistic equal, not approximately equal.
 */

#include <gtest/gtest.h>

#include <unistd.h>
#include <filesystem>
#include <memory>

#include "sim/system.hh"
#include "trace/corpus.hh"
#include "trace/format.hh"
#include "trace/stream.hh"
#include "workload/generator.hh"
#include "workload/mixes.hh"
#include "workload/trace_profile.hh"

namespace padc::trace
{
namespace
{

class RoundtripTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = ::testing::TempDir() + "padc_roundtrip_test." +
               std::to_string(::getpid());
        std::filesystem::remove_all(dir_);
        std::filesystem::create_directories(dir_);
        workload::clearTraceProfiles();
    }

    void
    TearDown() override
    {
        std::filesystem::remove_all(dir_);
        workload::clearTraceProfiles();
    }

    /**
     * Capture `ops` operations of the mix-placed generator stream for
     * one core, exactly as `padc trace capture` does.
     */
    void
    capture(const workload::Mix &mix, std::uint32_t core,
            std::uint64_t mix_seed, std::uint64_t ops,
            const std::string &name)
    {
        workload::SyntheticTrace generator(
            workload::traceParamsFor(mix, core, mix_seed));
        TraceWriter writer(dir_ + "/" + name + ".trc");
        for (std::uint64_t i = 0; i < ops; ++i)
            writer.append(generator.next());
        std::string error;
        ASSERT_TRUE(writer.close(&error)) << error;
        workload::registerTraceProfile(
            name, [path = dir_ + "/" + name + ".trc"]() {
                return std::make_unique<StreamingFileTrace>(path);
            });
    }

    /** Run a mix on a fresh System and export its full stat set. */
    static StatSet
    runAndExport(const sim::SystemConfig &config, const workload::Mix &mix,
                 std::uint64_t mix_seed, std::uint64_t instructions)
    {
        std::vector<std::unique_ptr<core::TraceSource>> traces;
        std::vector<core::TraceSource *> sources;
        for (std::uint32_t c = 0; c < config.num_cores; ++c) {
            traces.push_back(workload::makeTraceSource(mix, c, mix_seed));
            sources.push_back(traces.back().get());
        }
        sim::System system(config, std::move(sources));
        system.run(instructions, 30000000);
        return system.exportStats();
    }

    std::string dir_;
};

TEST_F(RoundtripTest, CapturedTraceReproducesGeneratorRunBitIdentically)
{
    constexpr std::uint64_t kInstructions = 15000;
    constexpr std::uint64_t kMixSeed = 5;
    // Capturing at least `instructions` ops guarantees the replay
    // never wraps: every op spans >= 1 instruction.
    constexpr std::uint64_t kCaptureOps = 20000;

    sim::SystemConfig config = sim::SystemConfig::baseline(2);
    config.sched.kind = SchedPolicyKind::Aps;
    config.sched.apd_enabled = true;

    const workload::Mix generated = {"libquantum_06", "milc_06"};
    const StatSet baseline =
        runAndExport(config, generated, kMixSeed, kInstructions);

    capture(generated, 0, kMixSeed, kCaptureOps, "lib_cap");
    capture(generated, 1, kMixSeed, kCaptureOps, "milc_cap");
    const workload::Mix replayed = {"lib_cap", "milc_cap"};
    const StatSet replay =
        runAndExport(config, replayed, kMixSeed, kInstructions);

    // Bit-identical: identical stat names in identical order with
    // identical values -- the replay is indistinguishable from the
    // generator run.
    ASSERT_EQ(baseline.entries().size(), replay.entries().size());
    for (std::size_t i = 0; i < baseline.entries().size(); ++i) {
        EXPECT_EQ(baseline.entries()[i].first, replay.entries()[i].first);
        EXPECT_EQ(baseline.entries()[i].second,
                  replay.entries()[i].second)
            << baseline.entries()[i].first;
    }
    // Sanity: the run did real work.
    EXPECT_GT(baseline.entries().size(), 10u);
}

TEST_F(RoundtripTest, ReplayIsDeterministicAcrossRuns)
{
    constexpr std::uint64_t kInstructions = 10000;
    sim::SystemConfig config = sim::SystemConfig::baseline(1);

    const workload::Mix generated = {"swim_00"};
    capture(generated, 0, 9, 15000, "swim_cap");
    const workload::Mix replayed = {"swim_cap"};

    const StatSet a = runAndExport(config, replayed, 9, kInstructions);
    const StatSet b = runAndExport(config, replayed, 9, kInstructions);
    ASSERT_EQ(a.entries().size(), b.entries().size());
    for (std::size_t i = 0; i < a.entries().size(); ++i)
        EXPECT_EQ(a.entries()[i].second, b.entries()[i].second)
            << a.entries()[i].first;
}

} // namespace
} // namespace padc::trace
