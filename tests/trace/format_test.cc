/**
 * @file
 * Unit tests for the PADCTRC2 trace format: encoding primitives,
 * round-trips, compression ratio vs the v1 fixed-record format, and
 * cross-format readers.
 */

#include <gtest/gtest.h>

#include <unistd.h>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/trace_file.hh"
#include "trace/format.hh"
#include "workload/generator.hh"

namespace padc::trace
{
namespace
{

class FormatTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path_ = ::testing::TempDir() + "padc_format_test." +
                std::to_string(::getpid()) + ".trc";
        v1_path_ = ::testing::TempDir() + "padc_format_test_v1." +
                   std::to_string(::getpid()) + ".trc";
    }

    void
    TearDown() override
    {
        std::remove(path_.c_str());
        std::remove(v1_path_.c_str());
    }

    std::string path_;
    std::string v1_path_;
};

std::vector<core::TraceOp>
sampleOps()
{
    return {
        {3, 0x1000, 0x400, true, false},
        {0, 0xFFFFFFFFFFC0ULL, 0x404, false, true},
        {1000000, 0x40, 0x9999, true, true},
        {62, 0x1040, 0x400, true, false},
        {63, 0x1080, 0x400, false, false},
        {64, 0x10C0, 0x400, true, true},
    };
}

std::vector<core::TraceOp>
generatedOps(std::uint64_t count, std::uint64_t seed = 42)
{
    workload::TraceParams params;
    params.seed = seed;
    workload::SyntheticTrace generator(params);
    std::vector<core::TraceOp> ops;
    ops.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i)
        ops.push_back(generator.next());
    return ops;
}

void
expectSameOps(const std::vector<core::TraceOp> &a,
              const std::vector<core::TraceOp> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].addr, b[i].addr) << "op " << i;
        ASSERT_EQ(a[i].pc, b[i].pc) << "op " << i;
        ASSERT_EQ(a[i].compute_gap, b[i].compute_gap) << "op " << i;
        ASSERT_EQ(a[i].is_load, b[i].is_load) << "op " << i;
        ASSERT_EQ(a[i].dependent, b[i].dependent) << "op " << i;
    }
}

TEST(VarintTest, ZigzagRoundTrips)
{
    const std::int64_t values[] = {0,  1, -1, 63, -64, 1LL << 40,
                                   -(1LL << 40), INT64_MAX, INT64_MIN};
    for (const std::int64_t value : values)
        EXPECT_EQ(unzigzag(zigzag(value)), value) << value;
    // Small magnitudes map to small codes (the point of zigzag).
    EXPECT_LE(zigzag(-1), 2u);
    EXPECT_LE(zigzag(1), 2u);
}

TEST(VarintTest, VarintRoundTrips)
{
    std::vector<unsigned char> buf;
    const std::uint64_t values[] = {0,    1,     127,        128,
                                    300,  16384, 1ULL << 32, UINT64_MAX};
    for (const std::uint64_t value : values)
        putVarint(buf, value);
    const unsigned char *cursor = buf.data();
    const unsigned char *end = buf.data() + buf.size();
    for (const std::uint64_t value : values) {
        std::uint64_t got = 0;
        ASSERT_TRUE(getVarint(&cursor, end, &got));
        EXPECT_EQ(got, value);
    }
    EXPECT_EQ(cursor, end);
}

TEST(VarintTest, TruncatedVarintRejected)
{
    std::vector<unsigned char> buf;
    putVarint(buf, UINT64_MAX);
    for (std::size_t keep = 0; keep < buf.size(); ++keep) {
        const unsigned char *cursor = buf.data();
        std::uint64_t got = 0;
        EXPECT_FALSE(getVarint(&cursor, buf.data() + keep, &got))
            << "kept " << keep << " of " << buf.size();
    }
}

TEST(VarintTest, SmallValuesEncodeInOneByte)
{
    std::vector<unsigned char> buf;
    putVarint(buf, 100);
    EXPECT_EQ(buf.size(), 1u);
}

TEST(BlockCodecTest, EncodeDecodeRoundTrips)
{
    const auto ops = sampleOps();
    std::vector<unsigned char> payload;
    encodeBlock(ops, 0, ops.size(), &payload);
    std::vector<core::TraceOp> decoded;
    std::string error;
    ASSERT_TRUE(decodeBlock(payload.data(), payload.size(), ops.size(),
                            &decoded, &error))
        << error;
    expectSameOps(ops, decoded);
}

TEST_F(FormatTest, OneShotRoundTrip)
{
    const auto ops = sampleOps();
    std::string error;
    ASSERT_TRUE(writeTraceFileV2(path_, ops, &error)) << error;
    std::vector<core::TraceOp> loaded;
    ASSERT_TRUE(readTraceFileV2(path_, &loaded, &error)) << error;
    expectSameOps(ops, loaded);
}

TEST_F(FormatTest, EmptyTraceRoundTrips)
{
    std::string error;
    ASSERT_TRUE(writeTraceFileV2(path_, {}, &error)) << error;
    std::vector<core::TraceOp> loaded;
    ASSERT_TRUE(readTraceFileV2(path_, &loaded, &error)) << error;
    EXPECT_TRUE(loaded.empty());
}

TEST_F(FormatTest, MultiBlockRoundTrip)
{
    const auto ops = generatedOps(10000);
    std::string error;
    // Small blocks force many of them.
    ASSERT_TRUE(writeTraceFileV2(path_, ops, &error, 256)) << error;
    std::vector<core::TraceOp> loaded;
    ASSERT_TRUE(readTraceFileV2(path_, &loaded, &error)) << error;
    expectSameOps(ops, loaded);

    TraceFileInfo info;
    ASSERT_TRUE(probeTraceFile(path_, &info, &error)) << error;
    EXPECT_EQ(info.format, TraceFormat::V2);
    EXPECT_EQ(info.op_count, 10000u);
    EXPECT_EQ(info.block_ops, 256u);
    EXPECT_EQ(info.num_blocks, (10000u + 255u) / 256u);
}

TEST_F(FormatTest, IncrementalWriterMatchesOneShot)
{
    const auto ops = generatedOps(5000);
    std::string error;
    ASSERT_TRUE(writeTraceFileV2(path_, ops, &error, 512)) << error;

    const std::string streamed = ::testing::TempDir() + "padc_streamed." +
                                 std::to_string(::getpid()) + ".trc";
    TraceWriter writer(streamed, 512);
    ASSERT_TRUE(writer.ok()) << writer.error();
    for (const core::TraceOp &op : ops)
        writer.append(op);
    EXPECT_EQ(writer.opCount(), ops.size());
    ASSERT_TRUE(writer.close(&error)) << error;

    // Byte-identical: same ops, same block shape, same metadata.
    std::ifstream a(path_, std::ios::binary);
    std::ifstream b(streamed, std::ios::binary);
    const std::string bytes_a((std::istreambuf_iterator<char>(a)),
                              std::istreambuf_iterator<char>());
    const std::string bytes_b((std::istreambuf_iterator<char>(b)),
                              std::istreambuf_iterator<char>());
    EXPECT_EQ(bytes_a, bytes_b);
    std::remove(streamed.c_str());
}

TEST_F(FormatTest, AtLeastTwiceAsSmallAsV1OnGeneratedTraces)
{
    const auto ops = generatedOps(50000);
    std::string error;
    ASSERT_TRUE(core::writeTraceFile(v1_path_, ops, &error)) << error;
    ASSERT_TRUE(writeTraceFileV2(path_, ops, &error)) << error;
    const auto v1_size = std::filesystem::file_size(v1_path_);
    const auto v2_size = std::filesystem::file_size(path_);
    // The headline claim: >= 2x smaller than 24-byte fixed records.
    EXPECT_LE(v2_size * 2, v1_size)
        << "v1 " << v1_size << " bytes, v2 " << v2_size << " bytes";
}

TEST_F(FormatTest, ReadAnyDispatchesOnMagic)
{
    const auto ops = sampleOps();
    std::string error;
    ASSERT_TRUE(core::writeTraceFile(v1_path_, ops, &error)) << error;
    ASSERT_TRUE(writeTraceFileV2(path_, ops, &error)) << error;

    std::vector<core::TraceOp> from_v1;
    std::vector<core::TraceOp> from_v2;
    ASSERT_TRUE(readTraceFileAny(v1_path_, &from_v1, &error)) << error;
    ASSERT_TRUE(readTraceFileAny(path_, &from_v2, &error)) << error;
    expectSameOps(from_v1, ops);
    expectSameOps(from_v2, ops);
}

TEST_F(FormatTest, ProbeIdentifiesV1)
{
    std::string error;
    ASSERT_TRUE(core::writeTraceFile(v1_path_, sampleOps(), &error))
        << error;
    TraceFileInfo info;
    ASSERT_TRUE(probeTraceFile(v1_path_, &info, &error)) << error;
    EXPECT_EQ(info.format, TraceFormat::V1);
    EXPECT_EQ(info.op_count, sampleOps().size());
}

TEST_F(FormatTest, VerifyFillsFootprint)
{
    // Two ops on one line, one op on another: footprint 2 lines.
    std::vector<core::TraceOp> ops = {
        {0, 0x1000, 0x400, true, false},
        {0, 0x1010, 0x404, false, false},
        {0, 0x2000, 0x408, true, false},
    };
    std::string error;
    ASSERT_TRUE(writeTraceFileV2(path_, ops, &error)) << error;
    TraceFileInfo info;
    ASSERT_TRUE(verifyTraceFile(path_, &info, &error)) << error;
    EXPECT_EQ(info.op_count, 3u);
    EXPECT_EQ(info.distinct_lines, 2u);
    EXPECT_EQ(info.loads, 2u);
    EXPECT_EQ(info.stores, 1u);
}

TEST_F(FormatTest, VerifyWorksOnV1Too)
{
    std::string error;
    ASSERT_TRUE(core::writeTraceFile(v1_path_, sampleOps(), &error))
        << error;
    TraceFileInfo info;
    ASSERT_TRUE(verifyTraceFile(v1_path_, &info, &error)) << error;
    EXPECT_EQ(info.format, TraceFormat::V1);
    EXPECT_EQ(info.op_count, sampleOps().size());
    EXPECT_NE(info.checksum, 0u);
    EXPECT_GT(info.distinct_lines, 0u);
}

TEST_F(FormatTest, NoTmpFileLeftBehindAfterSuccess)
{
    std::string error;
    ASSERT_TRUE(writeTraceFileV2(path_, sampleOps(), &error)) << error;
    EXPECT_FALSE(std::filesystem::exists(path_ + ".tmp"));
}

TEST_F(FormatTest, FailedWriteLeavesNoFile)
{
    std::string error;
    EXPECT_FALSE(
        writeTraceFileV2("/nonexistent-dir/padc.trc", sampleOps(), &error));
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(std::filesystem::exists("/nonexistent-dir/padc.trc"));
}

TEST(FnvTest, ChainingMatchesOneShot)
{
    const char data[] = "prefetch-aware dram controllers";
    const std::size_t size = sizeof(data) - 1;
    const std::uint64_t whole = fnv1a(data, size);
    for (std::size_t split = 0; split <= size; ++split) {
        const std::uint64_t first = fnv1a(data, split);
        EXPECT_EQ(fnv1a(data + split, size - split, first), whole)
            << "split " << split;
    }
    // Order and content sensitivity.
    EXPECT_NE(fnv1a("ab", 2), fnv1a("ba", 2));
    EXPECT_NE(fnv1a("a", 1), fnv1a("b", 1));
}

} // namespace
} // namespace padc::trace
