/**
 * @file
 * Unit tests for corpus manifests: save/load round trip, schema and
 * field validation, file-vs-manifest verification, and registration of
 * corpus entries as trace-backed workload profiles.
 */

#include <gtest/gtest.h>

#include <unistd.h>
#include <filesystem>
#include <fstream>

#include "trace/corpus.hh"
#include "trace/format.hh"
#include "workload/generator.hh"
#include "workload/mixes.hh"
#include "workload/trace_profile.hh"

namespace padc::trace
{
namespace
{

class CorpusTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = ::testing::TempDir() + "padc_corpus_test." +
               std::to_string(::getpid());
        std::filesystem::remove_all(dir_);
        std::filesystem::create_directories(dir_);
        workload::clearTraceProfiles();
    }

    void
    TearDown() override
    {
        std::filesystem::remove_all(dir_);
        workload::clearTraceProfiles();
    }

    std::vector<core::TraceOp>
    generatedOps(std::uint64_t count) const
    {
        workload::TraceParams params;
        params.seed = 11;
        workload::SyntheticTrace generator(params);
        std::vector<core::TraceOp> ops;
        for (std::uint64_t i = 0; i < count; ++i)
            ops.push_back(generator.next());
        return ops;
    }

    /** Write a trace and its manifest entry; returns the corpus. */
    Corpus
    corpusWithOneTrace(const std::string &name)
    {
        std::string error;
        EXPECT_TRUE(writeTraceFileV2(dir_ + "/" + name + ".trc",
                                     generatedOps(500), &error))
            << error;
        Corpus corpus;
        corpus.dir = dir_;
        CorpusEntry entry;
        EXPECT_TRUE(makeEntry(dir_, name + ".trc", name, "test", &entry,
                              &error))
            << error;
        upsertEntry(&corpus, entry);
        EXPECT_TRUE(saveCorpus(corpus, &error)) << error;
        return corpus;
    }

    std::string dir_;
};

TEST_F(CorpusTest, SaveLoadRoundTrip)
{
    const Corpus saved = corpusWithOneTrace("toy");
    Corpus loaded;
    std::string error;
    ASSERT_TRUE(loadCorpus(dir_, &loaded, &error)) << error;
    ASSERT_EQ(loaded.entries.size(), 1u);
    const CorpusEntry &a = saved.entries[0];
    const CorpusEntry &b = loaded.entries[0];
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.file, b.file);
    EXPECT_EQ(a.source, b.source);
    EXPECT_EQ(a.format, b.format);
    EXPECT_EQ(a.ops, b.ops);
    EXPECT_EQ(a.bytes, b.bytes);
    EXPECT_EQ(a.checksum, b.checksum); // full 64 bits survive JSON
    EXPECT_EQ(a.footprint_lines, b.footprint_lines);
}

TEST_F(CorpusTest, MakeEntryFillsFingerprint)
{
    const Corpus corpus = corpusWithOneTrace("toy");
    const CorpusEntry &entry = corpus.entries[0];
    EXPECT_EQ(entry.ops, 500u);
    EXPECT_GT(entry.bytes, 0u);
    EXPECT_NE(entry.checksum, 0u);
    EXPECT_GT(entry.footprint_lines, 0u);
    EXPECT_EQ(entry.format, "padctrc2");
}

TEST_F(CorpusTest, MissingManifestFailsLoadButNotInit)
{
    Corpus corpus;
    std::string error;
    EXPECT_FALSE(loadCorpus(dir_, &corpus, &error));
    EXPECT_NE(error.find("cannot open"), std::string::npos) << error;
    ASSERT_TRUE(loadOrInitCorpus(dir_, &corpus, &error)) << error;
    EXPECT_TRUE(corpus.entries.empty());
    EXPECT_EQ(corpus.dir, dir_);
}

TEST_F(CorpusTest, WrongSchemaRejected)
{
    std::ofstream out(corpusManifestPath(dir_));
    out << "{\"schema\": \"padc-trace-corpus-v999\", \"traces\": []}\n";
    out.close();
    Corpus corpus;
    std::string error;
    EXPECT_FALSE(loadCorpus(dir_, &corpus, &error));
    EXPECT_NE(error.find("schema"), std::string::npos) << error;
}

TEST_F(CorpusTest, MalformedEntryNamesTheField)
{
    std::ofstream out(corpusManifestPath(dir_));
    out << "{\"schema\": \"padc-trace-corpus-v1\", \"traces\": "
           "[{\"name\": \"x\"}]}\n";
    out.close();
    Corpus corpus;
    std::string error;
    EXPECT_FALSE(loadCorpus(dir_, &corpus, &error));
    EXPECT_NE(error.find("traces[0]"), std::string::npos) << error;
}

TEST_F(CorpusTest, BadChecksumTextRejected)
{
    std::ofstream out(corpusManifestPath(dir_));
    out << "{\"schema\": \"padc-trace-corpus-v1\", \"traces\": [{"
           "\"name\": \"x\", \"file\": \"x.trc\", \"source\": \"t\", "
           "\"format\": \"padctrc2\", \"ops\": 1, \"bytes\": 1, "
           "\"checksum\": \"12ab\", \"footprint_lines\": 1}]}\n";
    out.close();
    Corpus corpus;
    std::string error;
    EXPECT_FALSE(loadCorpus(dir_, &corpus, &error));
    EXPECT_NE(error.find("checksum"), std::string::npos) << error;
}

TEST_F(CorpusTest, UpsertReplacesByName)
{
    Corpus corpus;
    corpus.dir = dir_;
    upsertEntry(&corpus, {"a", "a.trc", "s1", "padctrc2", 1, 1, 1, 1});
    upsertEntry(&corpus, {"b", "b.trc", "s1", "padctrc2", 2, 2, 2, 2});
    upsertEntry(&corpus, {"a", "a2.trc", "s2", "padctrc2", 3, 3, 3, 3});
    ASSERT_EQ(corpus.entries.size(), 2u);
    ASSERT_NE(findEntry(corpus, "a"), nullptr);
    EXPECT_EQ(findEntry(corpus, "a")->file, "a2.trc");
    EXPECT_EQ(findEntry(corpus, "a")->ops, 3u);
}

TEST_F(CorpusTest, VerifyDetectsMutatedFile)
{
    Corpus corpus = corpusWithOneTrace("toy");
    std::string error;
    ASSERT_TRUE(verifyCorpus(corpus, &error)) << error;

    // Stale manifest: the recorded fingerprint no longer matches.
    corpus.entries[0].checksum ^= 1;
    corpus.entries[0].ops += 1;
    EXPECT_FALSE(verifyCorpus(corpus, &error));
    EXPECT_NE(error.find("checksum mismatch"), std::string::npos)
        << error;
    EXPECT_NE(error.find("ops"), std::string::npos) << error;
}

TEST_F(CorpusTest, VerifyDetectsMissingFile)
{
    Corpus corpus = corpusWithOneTrace("toy");
    std::filesystem::remove(dir_ + "/toy.trc");
    std::string error;
    EXPECT_FALSE(verifyCorpus(corpus, &error));
    EXPECT_NE(error.find("toy"), std::string::npos) << error;
}

TEST_F(CorpusTest, RegisterCorpusMakesProfilesUsable)
{
    const Corpus corpus = corpusWithOneTrace("toy_trace");
    std::string error;
    ASSERT_TRUE(registerCorpus(corpus, &error)) << error;
    EXPECT_TRUE(workload::isTraceProfile("toy_trace"));

    // Trace-backed profiles slot into mixes through the same factory
    // the simulator uses.
    const workload::Mix mix = {"toy_trace"};
    ConfigErrors errors;
    EXPECT_TRUE(workload::validateMix(mix, &errors)) << errors.str();
    auto source = workload::makeTraceSource(mix, 0, 42);
    ASSERT_NE(source, nullptr);
    const auto ops = generatedOps(500);
    for (std::size_t i = 0; i < 20; ++i)
        EXPECT_EQ(source->next().addr, ops[i].addr) << i;

    // Idempotent for the same corpus.
    EXPECT_TRUE(registerCorpus(corpus, &error)) << error;
}

TEST_F(CorpusTest, RegisterConflictingNameFails)
{
    const Corpus corpus = corpusWithOneTrace("toy_trace");
    std::string error;
    ASSERT_TRUE(registerCorpus(corpus, &error)) << error;

    // A different file claiming the same profile name must be refused.
    const std::string other_dir = dir_ + "_other";
    std::filesystem::create_directories(other_dir);
    ASSERT_TRUE(writeTraceFileV2(other_dir + "/toy_trace.trc",
                                 generatedOps(100), &error))
        << error;
    Corpus other;
    other.dir = other_dir;
    CorpusEntry entry;
    ASSERT_TRUE(makeEntry(other_dir, "toy_trace.trc", "toy_trace", "t",
                          &entry, &error))
        << error;
    upsertEntry(&other, entry);
    EXPECT_FALSE(registerCorpus(other, &error));
    EXPECT_NE(error.find("already registered"), std::string::npos)
        << error;
    std::filesystem::remove_all(other_dir);
}

TEST_F(CorpusTest, RegisterShadowingBuiltinProfileFails)
{
    std::string error;
    ASSERT_TRUE(writeTraceFileV2(dir_ + "/milc.trc", generatedOps(100),
                                 &error))
        << error;
    Corpus corpus;
    corpus.dir = dir_;
    CorpusEntry entry;
    ASSERT_TRUE(
        makeEntry(dir_, "milc.trc", "milc_06", "t", &entry, &error))
        << error;
    upsertEntry(&corpus, entry);
    EXPECT_FALSE(registerCorpus(corpus, &error));
    EXPECT_NE(error.find("shadows"), std::string::npos) << error;
}

TEST_F(CorpusTest, RegisterMissingFileFails)
{
    Corpus corpus;
    corpus.dir = dir_;
    upsertEntry(&corpus,
                {"ghost", "ghost.trc", "t", "padctrc2", 1, 1, 1, 1});
    std::string error;
    EXPECT_FALSE(registerCorpus(corpus, &error));
    EXPECT_FALSE(error.empty());
}

TEST_F(CorpusTest, ManifestWriteIsAtomic)
{
    corpusWithOneTrace("toy");
    EXPECT_FALSE(
        std::filesystem::exists(corpusManifestPath(dir_) + ".tmp"));
}

} // namespace
} // namespace padc::trace
