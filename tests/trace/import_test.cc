/**
 * @file
 * Unit tests for the external trace importers: text/CSV memtrace and
 * ChampSim-style fixed-record binaries, including their per-line /
 * per-record rejection diagnostics.
 */

#include <gtest/gtest.h>

#include <unistd.h>
#include <cstdio>
#include <fstream>

#include "trace/import.hh"

namespace padc::trace
{
namespace
{

class ImportTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path_ = ::testing::TempDir() + "padc_import_test." +
                std::to_string(::getpid()) + ".in";
    }

    void
    TearDown() override
    {
        std::remove(path_.c_str());
    }

    void
    writeText(const std::string &text) const
    {
        std::ofstream out(path_);
        out << text;
    }

    void
    writeBinary(const std::string &bytes) const
    {
        std::ofstream out(path_, std::ios::binary);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
    }

    /** One 64-byte ChampSim record. */
    static std::string
    champsimRecord(std::uint64_t ip,
                   const std::vector<std::uint64_t> &src_mem,
                   const std::vector<std::uint64_t> &dest_mem)
    {
        std::string record(64, '\0');
        const auto put64 = [&record](std::size_t offset,
                                     std::uint64_t value) {
            for (int i = 0; i < 8; ++i) {
                record[offset + static_cast<std::size_t>(i)] =
                    static_cast<char>((value >> (8 * i)) & 0xFF);
            }
        };
        put64(0, ip);
        for (std::size_t i = 0; i < dest_mem.size() && i < 2; ++i)
            put64(16 + 8 * i, dest_mem[i]);
        for (std::size_t i = 0; i < src_mem.size() && i < 4; ++i)
            put64(32 + 8 * i, src_mem[i]);
        return record;
    }

    std::string path_;
};

TEST_F(ImportTest, CsvBasicFields)
{
    writeText("# a comment\n"
              "0x1000,0x400,R,3\n"
              "4096,1028,W,0\n"
              "\n"
              "0x2000,0x408,L,7,1\n");
    std::vector<core::TraceOp> ops;
    std::string error;
    ImportStats stats;
    ASSERT_TRUE(importCsvMemtrace(path_, &ops, &error, &stats)) << error;
    ASSERT_EQ(ops.size(), 3u);
    EXPECT_EQ(stats.ops, 3u);
    EXPECT_EQ(stats.skipped, 2u); // comment + blank

    EXPECT_EQ(ops[0].addr, 0x1000u);
    EXPECT_EQ(ops[0].pc, 0x400u);
    EXPECT_TRUE(ops[0].is_load);
    EXPECT_EQ(ops[0].compute_gap, 3u);
    EXPECT_FALSE(ops[0].dependent);

    EXPECT_EQ(ops[1].addr, 4096u); // decimal accepted
    EXPECT_FALSE(ops[1].is_load);  // W = store

    EXPECT_TRUE(ops[2].dependent); // optional 5th field
}

TEST_F(ImportTest, CsvRwSpellings)
{
    writeText("0x0,0x0,r,0\n0x40,0x0,0,0\n0x80,0x0,s,0\n0xC0,0x0,1,0\n");
    std::vector<core::TraceOp> ops;
    std::string error;
    ASSERT_TRUE(importCsvMemtrace(path_, &ops, &error)) << error;
    ASSERT_EQ(ops.size(), 4u);
    EXPECT_TRUE(ops[0].is_load);
    EXPECT_TRUE(ops[1].is_load);
    EXPECT_FALSE(ops[2].is_load);
    EXPECT_FALSE(ops[3].is_load);
}

TEST_F(ImportTest, CsvWhitespaceTolerated)
{
    writeText("  0x1000 , 0x400 , R , 3 \r\n");
    std::vector<core::TraceOp> ops;
    std::string error;
    ASSERT_TRUE(importCsvMemtrace(path_, &ops, &error)) << error;
    ASSERT_EQ(ops.size(), 1u);
    EXPECT_EQ(ops[0].addr, 0x1000u);
}

TEST_F(ImportTest, CsvDiagnosticNamesLineAndField)
{
    writeText("0x1000,0x400,R,3\n"
              "0x2000,0x404,Q,1\n");
    std::vector<core::TraceOp> ops;
    std::string error;
    EXPECT_FALSE(importCsvMemtrace(path_, &ops, &error));
    EXPECT_NE(error.find("line 2"), std::string::npos) << error;
    EXPECT_NE(error.find("rw"), std::string::npos) << error;
    EXPECT_TRUE(ops.empty()); // strict: nothing survives a bad line
}

TEST_F(ImportTest, CsvBadAddrDiagnostic)
{
    writeText("zork,0x400,R,3\n");
    std::vector<core::TraceOp> ops;
    std::string error;
    EXPECT_FALSE(importCsvMemtrace(path_, &ops, &error));
    EXPECT_NE(error.find("line 1"), std::string::npos) << error;
    EXPECT_NE(error.find("addr"), std::string::npos) << error;
}

TEST_F(ImportTest, CsvWrongFieldCountDiagnostic)
{
    writeText("0x1000,0x400\n");
    std::vector<core::TraceOp> ops;
    std::string error;
    EXPECT_FALSE(importCsvMemtrace(path_, &ops, &error));
    EXPECT_NE(error.find("4 or 5 fields"), std::string::npos) << error;
}

TEST_F(ImportTest, CsvMissingFileDiagnostic)
{
    std::vector<core::TraceOp> ops;
    std::string error;
    EXPECT_FALSE(
        importCsvMemtrace("/nonexistent/padc.csv", &ops, &error));
    EXPECT_NE(error.find("cannot open"), std::string::npos) << error;
}

TEST_F(ImportTest, ChampSimLoadsStoresAndGaps)
{
    std::string bytes;
    bytes += champsimRecord(0x400, {}, {});       // compute only
    bytes += champsimRecord(0x404, {}, {});       // compute only
    bytes += champsimRecord(0x408, {0x1000}, {}); // one load
    bytes += champsimRecord(0x40C, {0x2000, 0x2040}, {0x3000});
    writeBinary(bytes);

    std::vector<core::TraceOp> ops;
    std::string error;
    ImportStats stats;
    ASSERT_TRUE(importChampSim(path_, &ops, &error, &stats)) << error;
    EXPECT_EQ(stats.lines, 4u);
    ASSERT_EQ(ops.size(), 4u);

    // The two memory-free records become the next op's compute gap.
    EXPECT_EQ(ops[0].compute_gap, 2u);
    EXPECT_EQ(ops[0].addr, 0x1000u);
    EXPECT_EQ(ops[0].pc, 0x408u);
    EXPECT_TRUE(ops[0].is_load);

    // Record with several operands: loads first, then stores, gap only
    // on the first op.
    EXPECT_EQ(ops[1].addr, 0x2000u);
    EXPECT_TRUE(ops[1].is_load);
    EXPECT_EQ(ops[1].compute_gap, 0u);
    EXPECT_EQ(ops[2].addr, 0x2040u);
    EXPECT_TRUE(ops[2].is_load);
    EXPECT_EQ(ops[3].addr, 0x3000u);
    EXPECT_FALSE(ops[3].is_load);
    EXPECT_EQ(ops[3].pc, 0x40Cu);
}

TEST_F(ImportTest, ChampSimTruncatedRecordRejected)
{
    std::string bytes = champsimRecord(0x400, {0x1000}, {});
    bytes += bytes.substr(0, 30); // partial second record
    writeBinary(bytes);

    std::vector<core::TraceOp> ops;
    std::string error;
    EXPECT_FALSE(importChampSim(path_, &ops, &error));
    EXPECT_NE(error.find("truncated"), std::string::npos) << error;
    EXPECT_TRUE(ops.empty());
}

TEST_F(ImportTest, ImportTraceDispatches)
{
    writeText("0x1000,0x400,R,3\n");
    std::vector<core::TraceOp> ops;
    std::string error;
    ASSERT_TRUE(importTrace(ImportFormat::Csv, path_, &ops, &error))
        << error;
    EXPECT_EQ(ops.size(), 1u);
}

} // namespace
} // namespace padc::trace
