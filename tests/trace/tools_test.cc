/**
 * @file
 * In-process tests for the `padc trace` toolchain: capture, convert,
 * info, verify, and their exit-code contract (0 ok, 1 operation
 * failed, 2 usage error), including dispatch through the main driver.
 */

#include <gtest/gtest.h>

#include <unistd.h>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/trace_file.hh"
#include "exp/driver.hh"
#include "trace/corpus.hh"
#include "trace/format.hh"
#include "trace/tools.hh"
#include "workload/trace_profile.hh"

namespace padc::trace
{
namespace
{

class ToolsTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = ::testing::TempDir() + "padc_tools_test." +
               std::to_string(::getpid());
        std::filesystem::remove_all(dir_);
        std::filesystem::create_directories(dir_);
        workload::clearTraceProfiles();
    }

    void
    TearDown() override
    {
        std::filesystem::remove_all(dir_);
        workload::clearTraceProfiles();
    }

    static int
    run(const std::vector<std::string> &args)
    {
        std::vector<const char *> argv;
        argv.push_back("padc");
        for (const std::string &arg : args)
            argv.push_back(arg.c_str());
        return traceToolMain(static_cast<int>(argv.size()), argv.data());
    }

    std::string dir_;
};

TEST_F(ToolsTest, MissingSubcommandIsUsageError)
{
    EXPECT_EQ(run({"trace"}), 2);
    EXPECT_EQ(run({"trace", "frobnicate"}), 2);
}

TEST_F(ToolsTest, HelpSucceeds)
{
    EXPECT_EQ(run({"trace", "help"}), 0);
}

TEST_F(ToolsTest, CaptureWritesTraceAndManifest)
{
    ASSERT_EQ(run({"trace", "capture", "--profile", "libquantum_06",
                   "--out", dir_, "--ops", "2000", "--seed", "3"}),
              0);
    const std::string name = "libquantum_06.c0.s3";
    EXPECT_TRUE(std::filesystem::exists(dir_ + "/" + name + ".trc"));

    Corpus corpus;
    std::string error;
    ASSERT_TRUE(loadCorpus(dir_, &corpus, &error)) << error;
    ASSERT_EQ(corpus.entries.size(), 1u);
    EXPECT_EQ(corpus.entries[0].name, name);
    EXPECT_EQ(corpus.entries[0].ops, 2000u);
    EXPECT_EQ(corpus.entries[0].format, "padctrc2");
    ASSERT_TRUE(verifyCorpus(corpus, &error)) << error;
}

TEST_F(ToolsTest, CaptureUnknownProfileSuggests)
{
    EXPECT_EQ(run({"trace", "capture", "--profile", "libquantm_06",
                   "--out", dir_, "--ops", "100"}),
              1);
}

TEST_F(ToolsTest, CaptureMissingArgsIsUsageError)
{
    EXPECT_EQ(run({"trace", "capture", "--profile", "milc_06"}), 2);
    EXPECT_EQ(run({"trace", "capture", "--profile", "milc_06", "--out",
                   dir_, "--ops", "0"}),
              2);
}

TEST_F(ToolsTest, ConvertCsvIntoCorpus)
{
    const std::string csv = dir_ + "/mem.csv";
    {
        std::ofstream out(csv);
        out << "# addr,pc,rw,gap\n";
        for (int i = 0; i < 100; ++i) {
            out << (0x10000 + 64 * i) << "," << (0x400 + 4 * i)
                << (i % 4 == 0 ? ",W," : ",R,") << i % 8 << "\n";
        }
    }
    ASSERT_EQ(run({"trace", "convert", "--in", csv, "--format", "csv",
                   "--out", dir_, "--name", "memtrace"}),
              0);
    Corpus corpus;
    std::string error;
    ASSERT_TRUE(loadCorpus(dir_, &corpus, &error)) << error;
    const CorpusEntry *entry = findEntry(corpus, "memtrace");
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->ops, 100u);
    EXPECT_EQ(entry->source, "import:csv:" + csv);
}

TEST_F(ToolsTest, ConvertMalformedCsvFailsWithDiagnostic)
{
    const std::string csv = dir_ + "/bad.csv";
    {
        std::ofstream out(csv);
        out << "0x1000,0x400,R,1\nnot-a-line\n";
    }
    EXPECT_EQ(run({"trace", "convert", "--in", csv, "--format", "csv",
                   "--out", dir_, "--name", "bad"}),
              1);
    // Nothing half-written lands in the corpus.
    EXPECT_FALSE(std::filesystem::exists(dir_ + "/bad.trc"));
}

TEST_F(ToolsTest, ConvertTranscodesV1)
{
    // Build a v1 file, transcode it, verify the corpus entry shrank it.
    std::vector<core::TraceOp> ops;
    for (int i = 0; i < 1000; ++i) {
        ops.push_back({static_cast<std::uint32_t>(i % 16),
                       0x40000ULL + 64 * static_cast<std::uint64_t>(i),
                       0x400, true, false});
    }
    const std::string v1 = dir_ + "/old.trc";
    std::string error;
    ASSERT_TRUE(core::writeTraceFile(v1, ops, &error)) << error;
    ASSERT_EQ(run({"trace", "convert", "--in", v1, "--format", "trace",
                   "--out", dir_, "--name", "old_v1"}),
              0);
    Corpus corpus;
    ASSERT_TRUE(loadCorpus(dir_, &corpus, &error)) << error;
    const CorpusEntry *entry = findEntry(corpus, "old_v1");
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->ops, 1000u);
    EXPECT_LT(entry->bytes, std::filesystem::file_size(v1));
}

TEST_F(ToolsTest, InfoAndVerifyReportOnFiles)
{
    ASSERT_EQ(run({"trace", "capture", "--profile", "milc_06", "--out",
                   dir_, "--ops", "500"}),
              0);
    const std::string file = dir_ + "/milc_06.c0.s1.trc";
    EXPECT_EQ(run({"trace", "info", file}), 0);
    EXPECT_EQ(run({"trace", "verify", file}), 0);
    EXPECT_EQ(run({"trace", "verify", "--corpus", dir_}), 0);
    EXPECT_EQ(run({"trace", "info", "/nonexistent/padc.trc"}), 1);
    EXPECT_EQ(run({"trace", "verify", "/nonexistent/padc.trc"}), 1);
}

TEST_F(ToolsTest, VerifyCatchesCorruptedCorpusFile)
{
    ASSERT_EQ(run({"trace", "capture", "--profile", "milc_06", "--out",
                   dir_, "--ops", "500"}),
              0);
    const std::string file = dir_ + "/milc_06.c0.s1.trc";
    {
        std::fstream out(file,
                         std::ios::binary | std::ios::in | std::ios::out);
        out.seekg(60);
        const char byte = static_cast<char>(out.get());
        out.seekp(60);
        out.put(static_cast<char>(byte ^ 0x5A)); // flip payload bits
    }
    EXPECT_EQ(run({"trace", "verify", "--corpus", dir_}), 1);
    EXPECT_EQ(run({"trace", "verify", file}), 1);
}

TEST_F(ToolsTest, DriverDispatchesTraceCommand)
{
    const char *argv[] = {"padc", "trace", "help"};
    EXPECT_EQ(exp::driverMain(3, argv), 0);
    const char *bad[] = {"padc", "trace"};
    EXPECT_EQ(exp::driverMain(2, bad), 2);
}

TEST_F(ToolsTest, DriverCorpusFlagRegistersProfiles)
{
    ASSERT_EQ(run({"trace", "capture", "--profile", "swim_00", "--out",
                   dir_, "--ops", "300", "--name", "swim_cap"}),
              0);
    // `padc run` with --corpus registers the entries before running;
    // use an unknown experiment so nothing heavy executes -- the
    // registration still happened.
    const std::string flag_dir = dir_;
    const char *argv[] = {"padc",     "run",
                          "no_such_experiment_xyz", "--corpus",
                          flag_dir.c_str()};
    EXPECT_EQ(exp::driverMain(5, argv), 2); // unknown selector
    EXPECT_TRUE(workload::isTraceProfile("swim_cap"));
}

TEST_F(ToolsTest, DriverCorpusFlagRejectsMissingManifest)
{
    const std::string empty = dir_ + "/empty";
    std::filesystem::create_directories(empty);
    const char *argv[] = {"padc", "run", "smoke", "--corpus",
                          empty.c_str()};
    EXPECT_EQ(exp::driverMain(5, argv), 2);
}

} // namespace
} // namespace padc::trace
