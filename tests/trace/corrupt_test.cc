/**
 * @file
 * Corruption matrix for PADCTRC2: every class of damage a trace file
 * can suffer must produce a descriptive error, never a crash, hang, or
 * silent partial decode. Exercised through both the whole-file reader
 * and the full verifier (and, where relevant, the streaming path).
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "trace/format.hh"
#include "trace/stream.hh"
#include "workload/generator.hh"

namespace padc::trace
{
namespace
{

class CorruptTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        // Unique per process: ctest runs this suite both as individual
        // cases and as one whole-binary smoke test, concurrently.
        path_ = ::testing::TempDir() + "padc_corrupt_test." +
                std::to_string(::getpid()) + ".trc";
        std::string error;
        ASSERT_TRUE(writeTraceFileV2(path_, sampleOps(), &error, 4))
            << error;
        bytes_ = slurp();
    }

    void
    TearDown() override
    {
        std::remove(path_.c_str());
    }

    static std::vector<core::TraceOp>
    sampleOps()
    {
        workload::TraceParams params;
        params.seed = 7;
        workload::SyntheticTrace generator(params);
        std::vector<core::TraceOp> ops;
        for (int i = 0; i < 50; ++i)
            ops.push_back(generator.next());
        return ops;
    }

    std::string
    slurp() const
    {
        std::ifstream in(path_, std::ios::binary);
        return std::string((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
    }

    void
    rewrite(const std::string &bytes) const
    {
        std::ofstream out(path_, std::ios::binary | std::ios::trunc);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
    }

    static std::uint64_t
    getU64(const std::string &bytes, std::size_t offset)
    {
        std::uint64_t value = 0;
        for (int i = 7; i >= 0; --i) {
            value = (value << 8) |
                    static_cast<unsigned char>(bytes[offset + i]);
        }
        return value;
    }

    static void
    putU64At(std::string *bytes, std::size_t offset, std::uint64_t value)
    {
        for (int i = 0; i < 8; ++i) {
            (*bytes)[offset + i] =
                static_cast<char>((value >> (8 * i)) & 0xFF);
        }
    }

    /**
     * Expect both the reader and the verifier to reject the current
     * file with a message containing @p needle.
     */
    void
    expectRejected(const std::string &needle) const
    {
        std::vector<core::TraceOp> ops;
        std::string error;
        EXPECT_FALSE(readTraceFileV2(path_, &ops, &error));
        EXPECT_NE(error.find(needle), std::string::npos)
            << "reader error: " << error;

        TraceFileInfo info;
        error.clear();
        EXPECT_FALSE(verifyTraceFile(path_, &info, &error));
        EXPECT_FALSE(error.empty());
    }

    std::string path_;
    std::string bytes_;
};

TEST_F(CorruptTest, TruncatedHeaderRejected)
{
    for (const std::size_t keep : {0u, 4u, 8u, 39u}) {
        rewrite(bytes_.substr(0, keep));
        expectRejected("header");
    }
}

TEST_F(CorruptTest, BadMagicRejected)
{
    std::string bytes = bytes_;
    bytes[0] = 'X';
    rewrite(bytes);
    expectRejected("magic");
}

TEST_F(CorruptTest, TruncatedMidBlockRejected)
{
    // Chop inside the first block's payload: the exact-file-size index
    // check fires first with a truncation diagnostic.
    rewrite(bytes_.substr(0, 40 + 16 + 3));
    expectRejected("truncated");
}

TEST_F(CorruptTest, TruncatedMidVarintRejected)
{
    // Rewrite a single-block file whose payload we then cut inside a
    // varint, fixing up sizes/checksums so only the decode layer can
    // object. Build it by hand from a fresh encode.
    const auto ops = sampleOps();
    std::vector<unsigned char> payload;
    encodeBlock(ops, 0, ops.size(), &payload);
    // Cut the payload one byte short and decode directly.
    std::vector<core::TraceOp> out;
    std::string error;
    EXPECT_FALSE(decodeBlock(payload.data(), payload.size() - 1,
                             ops.size(), &out, &error));
    EXPECT_NE(error.find("varint"), std::string::npos) << error;
}

TEST_F(CorruptTest, LeftoverPayloadBytesRejected)
{
    const auto ops = sampleOps();
    std::vector<unsigned char> payload;
    encodeBlock(ops, 0, ops.size(), &payload);
    payload.push_back(0x00); // one byte the op count cannot explain
    std::vector<core::TraceOp> out;
    std::string error;
    EXPECT_FALSE(decodeBlock(payload.data(), payload.size(), ops.size(),
                             &out, &error));
    EXPECT_NE(error.find("leftover"), std::string::npos) << error;
}

TEST_F(CorruptTest, BadBlockChecksumRejected)
{
    // Flip a payload byte of the first block, then repair the file
    // checksum so the per-block checksum is what catches it... or
    // simpler: flip the stored block checksum itself.
    std::string bytes = bytes_;
    // First block header starts at 40; block_checksum at +8.
    const std::uint64_t stored = getU64(bytes, 40 + 8);
    putU64At(&bytes, 40 + 8, stored ^ 1);
    rewrite(bytes);
    expectRejected("checksum");
}

TEST_F(CorruptTest, CorruptPayloadByteRejected)
{
    std::string bytes = bytes_;
    bytes[40 + 16] = static_cast<char>(bytes[40 + 16] ^ 0x40);
    rewrite(bytes);
    expectRejected("checksum");
}

TEST_F(CorruptTest, BadFileChecksumRejected)
{
    std::string bytes = bytes_;
    const std::uint64_t stored = getU64(bytes, 32);
    putU64At(&bytes, 32, stored ^ 1);
    rewrite(bytes);
    expectRejected("checksum");
}

TEST_F(CorruptTest, OpCountDisagreementRejected)
{
    std::string bytes = bytes_;
    const std::uint64_t stored = getU64(bytes, 16);
    putU64At(&bytes, 16, stored + 1);
    rewrite(bytes);
    std::vector<core::TraceOp> ops;
    std::string error;
    EXPECT_FALSE(readTraceFileV2(path_, &ops, &error));
    EXPECT_FALSE(error.empty());
}

TEST_F(CorruptTest, TrailingGarbageRejected)
{
    rewrite(bytes_ + "extra bytes past the index");
    expectRejected("trailing garbage");
}

TEST_F(CorruptTest, BadIndexChecksumRejected)
{
    std::string bytes = bytes_;
    const std::uint64_t stored = getU64(bytes, bytes.size() - 8);
    putU64At(&bytes, bytes.size() - 8, stored ^ 1);
    rewrite(bytes);
    expectRejected("index");
}

TEST_F(CorruptTest, AbsurdIndexOffsetRejected)
{
    std::string bytes = bytes_;
    putU64At(&bytes, 24, 1ULL << 60);
    rewrite(bytes);
    std::vector<core::TraceOp> ops;
    std::string error;
    EXPECT_FALSE(readTraceFileV2(path_, &ops, &error));
    EXPECT_FALSE(error.empty());
}

TEST_F(CorruptTest, ZeroBlockOpsRejected)
{
    std::string bytes = bytes_;
    bytes[12] = 0;
    bytes[13] = 0;
    bytes[14] = 0;
    bytes[15] = 0;
    rewrite(bytes);
    std::vector<core::TraceOp> ops;
    std::string error;
    EXPECT_FALSE(readTraceFileV2(path_, &ops, &error));
    EXPECT_NE(error.find("block_ops"), std::string::npos) << error;
}

TEST_F(CorruptTest, StreamingReaderRejectsCorruptFileUpFront)
{
    std::string bytes = bytes_;
    const std::uint64_t stored = getU64(bytes, bytes.size() - 8);
    putU64At(&bytes, bytes.size() - 8, stored ^ 1);
    rewrite(bytes);
    StreamingFileTrace trace(path_);
    EXPECT_FALSE(trace.ok());
    EXPECT_FALSE(trace.error().empty());
    // The infinite-stream contract still holds: next() is callable and
    // returns neutral ops rather than crashing.
    const core::TraceOp op = trace.next();
    EXPECT_EQ(op.addr, 0u);
}

TEST_F(CorruptTest, EveryPrefixIsRejectedOrEmpty)
{
    // Sweep all truncation points: no prefix may crash, hang, or decode
    // successfully (the file ends exactly at the index end).
    for (std::size_t keep = 0; keep < bytes_.size(); ++keep) {
        rewrite(bytes_.substr(0, keep));
        std::vector<core::TraceOp> ops;
        std::string error;
        EXPECT_FALSE(readTraceFileV2(path_, &ops, &error))
            << "prefix of " << keep << " bytes decoded";
        EXPECT_FALSE(error.empty()) << "prefix " << keep;
    }
}

} // namespace
} // namespace padc::trace
