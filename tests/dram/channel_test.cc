/**
 * @file
 * Unit tests for channel-level DRAM constraints: command bus, data bus,
 * tCCD, tRRD, the tFAW window, write/read turnaround, and refresh.
 */

#include <gtest/gtest.h>

#include "dram/channel.hh"

namespace padc::dram
{
namespace
{

class ChannelTest : public ::testing::Test
{
  protected:
    ChannelTest() : channel_(timing_, 8) {}

    Cycle
    cpu(std::uint32_t dram_cycles) const
    {
        return timing_.toCpu(dram_cycles);
    }

    /** Advance to the first DRAM-aligned cycle >= from where pred holds. */
    template <typename Pred>
    Cycle
    firstCycle(Cycle from, Pred pred)
    {
        Cycle t = from;
        while (!pred(t))
            t += timing_.cpu_per_dram_cycle;
        return t;
    }

    TimingParams timing_;
    Channel channel_;
};

TEST_F(ChannelTest, CommandBusSerializesCommands)
{
    ASSERT_TRUE(channel_.canActivate(0, 0));
    channel_.activate(0, 1, 0);
    // Any command must wait at least one DRAM command-clock cycle.
    EXPECT_FALSE(channel_.commandBusFree(0));
    EXPECT_FALSE(channel_.commandBusFree(cpu(1) - 1));
    EXPECT_TRUE(channel_.commandBusFree(cpu(1)));
    // An activate to another bank is additionally gated by tRRD.
    EXPECT_FALSE(channel_.canActivate(1, cpu(1)));
    EXPECT_TRUE(channel_.canActivate(1, cpu(timing_.tRRD)));
}

TEST_F(ChannelTest, RowHitTracking)
{
    channel_.activate(3, 77, 0);
    EXPECT_TRUE(channel_.isRowHit(3, 77));
    EXPECT_FALSE(channel_.isRowHit(3, 78));
    EXPECT_FALSE(channel_.isRowHit(4, 77));
    EXPECT_EQ(channel_.openRow(3), 77u);
    EXPECT_EQ(channel_.openRow(4), kNoOpenRow);
}

TEST_F(ChannelTest, TrrdBetweenActivates)
{
    channel_.activate(0, 1, 0);
    EXPECT_FALSE(channel_.canActivate(1, cpu(timing_.tRRD) - 1));
    EXPECT_TRUE(channel_.canActivate(1, cpu(timing_.tRRD)));
}

TEST_F(ChannelTest, TfawLimitsFourActivates)
{
    // Issue four activates as fast as tRRD allows.
    Cycle t = 0;
    for (std::uint32_t bank = 0; bank < 4; ++bank) {
        t = firstCycle(t, [&](Cycle c) { return channel_.canActivate(bank, c); });
        channel_.activate(bank, 1, t);
    }
    // The fifth activate must wait until tFAW after the first.
    const Cycle fifth = firstCycle(
        t, [&](Cycle c) { return channel_.canActivate(4, c); });
    EXPECT_GE(fifth, cpu(timing_.tFAW));
}

TEST_F(ChannelTest, TccdBetweenColumnCommands)
{
    // Open the same row in two banks far enough apart that tRCD is long
    // met for both by the time the first column command goes out.
    channel_.activate(0, 1, 0);
    channel_.activate(1, 1, cpu(timing_.tRRD));
    const Cycle both_ready =
        cpu(timing_.tRRD) + cpu(timing_.tRCD) + cpu(20);
    channel_.column(0, false, false, both_ready);
    // Bank 1 is tRCD-ready, but tCCD gates the second column command.
    EXPECT_FALSE(channel_.canColumn(1, false, both_ready + cpu(1)));
    EXPECT_TRUE(channel_.canColumn(1, false,
                                   both_ready + cpu(timing_.tCCD)));
}

TEST_F(ChannelTest, ColumnReturnsDataEnd)
{
    channel_.activate(0, 1, 0);
    const Cycle col = firstCycle(
        0, [&](Cycle c) { return channel_.canColumn(0, false, c); });
    const Cycle data_end = channel_.column(0, false, false, col);
    EXPECT_EQ(data_end, col + cpu(timing_.tCL) + cpu(timing_.tBURST));
}

TEST_F(ChannelTest, WriteToReadTurnaround)
{
    channel_.activate(0, 1, 0);
    const Cycle col = firstCycle(
        0, [&](Cycle c) { return channel_.canColumn(0, true, c); });
    const Cycle wr_end = channel_.column(0, true, false, col);
    // A read column command must wait tWTR past the write data.
    const Cycle rd_ok = wr_end + cpu(timing_.tWTR);
    EXPECT_FALSE(channel_.canColumn(0, false, rd_ok - cpu(1)));
    EXPECT_TRUE(channel_.canColumn(0, false, rd_ok));
}

TEST_F(ChannelTest, ReadToWriteGatedByReadDrain)
{
    channel_.activate(0, 1, 0);
    const Cycle col = firstCycle(
        0, [&](Cycle c) { return channel_.canColumn(0, false, c); });
    const Cycle rd_end = channel_.column(0, false, false, col);
    EXPECT_FALSE(channel_.canColumn(0, true, rd_end - cpu(1)));
    EXPECT_TRUE(channel_.canColumn(0, true, rd_end));
}

TEST_F(ChannelTest, RefreshDisabledByDefault)
{
    EXPECT_FALSE(channel_.refreshDue(1000000));
}

TEST(ChannelRefreshTest, RefreshClosesAllBanksAndRecurs)
{
    TimingParams timing;
    timing.refresh_enabled = true;
    Channel channel(timing, 4);
    const Cycle due = timing.toCpu(timing.tREFI);
    EXPECT_FALSE(channel.refreshDue(due - 1));
    ASSERT_TRUE(channel.refreshDue(due));

    channel.activate(2, 9, 0);
    channel.refresh(due);
    EXPECT_EQ(channel.openRow(2), kNoOpenRow);
    EXPECT_EQ(channel.stats().refreshes, 1u);
    // Banks blocked for tRFC.
    EXPECT_FALSE(channel.canActivate(0, due + timing.toCpu(timing.tRFC) -
                                            timing.cpu_per_dram_cycle));
    EXPECT_TRUE(channel.canActivate(0, due + timing.toCpu(timing.tRFC)));
    // Next refresh one interval later.
    EXPECT_FALSE(channel.refreshDue(due + 1));
    EXPECT_TRUE(channel.refreshDue(2 * timing.toCpu(timing.tREFI)));
}

TEST_F(ChannelTest, StatsAggregate)
{
    channel_.activate(0, 1, 0);
    const Cycle col = firstCycle(
        0, [&](Cycle c) { return channel_.canColumn(0, false, c); });
    channel_.column(0, false, false, col);
    const Cycle pre = firstCycle(
        col, [&](Cycle c) { return channel_.canPrecharge(0, c); });
    channel_.precharge(0, pre);
    EXPECT_EQ(channel_.stats().activates, 1u);
    EXPECT_EQ(channel_.stats().reads, 1u);
    EXPECT_EQ(channel_.stats().precharges, 1u);
    EXPECT_EQ(channel_.stats().writes, 0u);
}

/**
 * Property: back-to-back row-hit reads to one bank stream at the data-bus
 * rate (one line per max(tCCD, tBURST) DRAM cycles) once the pipeline
 * fills -- the "row-hit maximizes throughput" premise of the paper.
 */
TEST_F(ChannelTest, RowHitStreamingRate)
{
    channel_.activate(0, 5, 0);
    Cycle t = 0;
    Cycle last_issue = 0;
    std::vector<Cycle> issues;
    for (int i = 0; i < 10; ++i) {
        t = firstCycle(t, [&](Cycle c) {
            return channel_.canColumn(0, false, c);
        });
        channel_.column(0, false, false, t);
        issues.push_back(t);
        last_issue = t;
    }
    (void)last_issue;
    const Cycle gap = cpu(std::max(timing_.tCCD, timing_.tBURST));
    for (std::size_t i = 2; i < issues.size(); ++i)
        EXPECT_EQ(issues[i] - issues[i - 1], gap);
}

} // namespace
} // namespace padc::dram
