/**
 * @file
 * Unit and property tests for the DRAM address map, covering both
 * interleaving orders and the permutation-based bank remapping.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "dram/address_map.hh"

namespace padc::dram
{
namespace
{

Geometry
makeGeometry(std::uint32_t channels, std::uint32_t banks,
             std::uint32_t row_bytes, Interleave inter, bool perm)
{
    Geometry g;
    g.channels = channels;
    g.banks_per_channel = banks;
    g.row_bytes = row_bytes;
    g.interleave = inter;
    g.permutation_interleaving = perm;
    return g;
}

TEST(AddressMapTest, CoordinateRanges)
{
    AddressMap map(makeGeometry(2, 8, 4096, Interleave::Line, false));
    Rng rng(5);
    for (int i = 0; i < 2000; ++i) {
        const Addr addr = rng.next() & ((1ULL << 45) - 1);
        const DramCoord c = map.map(addr);
        EXPECT_LT(c.channel, 2u);
        EXPECT_LT(c.bank, 8u);
        EXPECT_LT(c.col, 64u);
    }
}

TEST(AddressMapTest, SameLineSameCoord)
{
    AddressMap map(makeGeometry(1, 8, 4096, Interleave::Line, false));
    const DramCoord a = map.map(0x10000);
    const DramCoord b = map.map(0x10000 + 63); // same cache line
    EXPECT_EQ(a, b);
}

TEST(AddressMapTest, LineInterleaveRotatesBanks)
{
    AddressMap map(makeGeometry(1, 8, 4096, Interleave::Line, false));
    // Consecutive lines must land in consecutive banks (mod 8), same row.
    const DramCoord c0 = map.map(0);
    for (std::uint32_t i = 1; i < 8; ++i) {
        const DramCoord ci = map.map(static_cast<Addr>(i) * kLineBytes);
        EXPECT_EQ(ci.bank, (c0.bank + i) % 8);
        EXPECT_EQ(ci.row, c0.row);
    }
}

TEST(AddressMapTest, RowInterleaveKeepsBankForWholeRow)
{
    AddressMap map(makeGeometry(1, 8, 4096, Interleave::Row, false));
    const DramCoord c0 = map.map(0);
    for (std::uint32_t i = 1; i < 64; ++i) { // 64 lines per 4KB row
        const DramCoord ci = map.map(static_cast<Addr>(i) * kLineBytes);
        EXPECT_EQ(ci.bank, c0.bank);
        EXPECT_EQ(ci.row, c0.row);
        EXPECT_EQ(ci.col, i);
    }
    // The 65th line moves on.
    EXPECT_NE(map.map(64 * kLineBytes), c0);
}

TEST(AddressMapTest, ChannelBitsSelectChannel)
{
    AddressMap map(makeGeometry(2, 8, 4096, Interleave::Line, false));
    // With line interleave, consecutive lines alternate channels.
    EXPECT_NE(map.map(0).channel, map.map(kLineBytes).channel);
}

TEST(AddressMapTest, PermutationPreservesRowAndCol)
{
    const auto plain = makeGeometry(1, 8, 4096, Interleave::Line, false);
    const auto perm = makeGeometry(1, 8, 4096, Interleave::Line, true);
    AddressMap pm(plain);
    AddressMap qm(perm);
    Rng rng(11);
    for (int i = 0; i < 1000; ++i) {
        const Addr addr = rng.next() & ((1ULL << 40) - 1);
        const DramCoord a = pm.map(addr);
        const DramCoord b = qm.map(addr);
        EXPECT_EQ(a.row, b.row);
        EXPECT_EQ(a.col, b.col);
        EXPECT_EQ(a.channel, b.channel);
        EXPECT_EQ(b.bank,
                  a.bank ^ static_cast<std::uint32_t>(a.row & 7));
    }
}

TEST(AddressMapTest, PermutationSpreadsRowConflicts)
{
    // Addresses that share a bank but differ in row under the plain map
    // should (usually) land in different banks under permutation --
    // the point of Zhang et al.'s scheme.
    AddressMap qm(makeGeometry(1, 8, 4096, Interleave::Line, true));
    // Same bank/col, rows 0..7 under the plain map.
    std::set<std::uint32_t> banks;
    for (std::uint64_t row = 0; row < 8; ++row) {
        // line index = row * (banks*cols) with bank=0, col=0
        const Addr addr = lineToAddr(row * 8 * 64);
        banks.insert(qm.map(addr).bank);
    }
    EXPECT_EQ(banks.size(), 8u);
}

/** map -> unmap must be the identity on line-aligned addresses. */
class RoundTripProperty
    : public ::testing::TestWithParam<
          std::tuple<std::uint32_t, std::uint32_t, std::uint32_t,
                     Interleave, bool>>
{
};

TEST_P(RoundTripProperty, MapUnmapIdentity)
{
    const auto [channels, banks, row_bytes, inter, perm] = GetParam();
    AddressMap map(makeGeometry(channels, banks, row_bytes, inter, perm));
    Rng rng(17);
    for (int i = 0; i < 500; ++i) {
        const Addr addr = lineAlign(rng.next() & ((1ULL << 44) - 1));
        EXPECT_EQ(map.unmap(map.map(addr)), addr);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, RoundTripProperty,
    ::testing::Combine(::testing::Values(1u, 2u, 4u),
                       ::testing::Values(4u, 8u),
                       ::testing::Values(2048u, 4096u, 131072u),
                       ::testing::Values(Interleave::Line, Interleave::Row),
                       ::testing::Bool()));

} // namespace
} // namespace padc::dram
