/**
 * @file
 * Unit tests for DRAM timing parameters and geometry validation.
 */

#include <gtest/gtest.h>

#include "dram/timing.hh"

namespace padc::dram
{
namespace
{

TEST(TimingTest, DefaultsValid)
{
    TimingParams t;
    EXPECT_TRUE(t.valid());
}

TEST(TimingTest, ToCpuScalesByRatio)
{
    TimingParams t;
    t.cpu_per_dram_cycle = 6;
    EXPECT_EQ(t.toCpu(0), 0u);
    EXPECT_EQ(t.toCpu(1), 6u);
    EXPECT_EQ(t.toCpu(10), 60u);
}

TEST(TimingTest, InvalidWhenTrcTooSmall)
{
    TimingParams t;
    t.tRC = t.tRAS + t.tRP - 1;
    EXPECT_FALSE(t.valid());
}

TEST(TimingTest, InvalidWhenTrasBelowTrcd)
{
    TimingParams t;
    t.tRAS = t.tRCD - 1;
    EXPECT_FALSE(t.valid());
}

TEST(TimingTest, InvalidWhenZeroRatioOrBurst)
{
    TimingParams t;
    t.cpu_per_dram_cycle = 0;
    EXPECT_FALSE(t.valid());
    TimingParams u;
    u.tBURST = 0;
    EXPECT_FALSE(u.valid());
}

TEST(TimingTest, InvalidWhenTfawBelowTrrd)
{
    TimingParams t;
    t.tFAW = t.tRRD - 1;
    EXPECT_FALSE(t.valid());
}

TEST(GeometryTest, DefaultsValid)
{
    Geometry g;
    EXPECT_TRUE(g.valid());
    EXPECT_EQ(g.linesPerRow(), 4096u / 64u);
}

TEST(GeometryTest, RejectsNonPowerOfTwo)
{
    Geometry g;
    g.banks_per_channel = 6;
    EXPECT_FALSE(g.valid());

    Geometry h;
    h.channels = 3;
    EXPECT_FALSE(h.valid());

    Geometry r;
    r.row_bytes = 5000;
    EXPECT_FALSE(r.valid());
}

TEST(GeometryTest, RejectsRowSmallerThanLine)
{
    Geometry g;
    g.row_bytes = 32;
    EXPECT_FALSE(g.valid());
}

/** Row-buffer sizes used by the Fig. 23 sweep must all be valid. */
class RowSizeProperty : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(RowSizeProperty, SweepSizesValid)
{
    Geometry g;
    g.row_bytes = GetParam();
    EXPECT_TRUE(g.valid());
    EXPECT_EQ(g.linesPerRow(), GetParam() / 64);
}

INSTANTIATE_TEST_SUITE_P(Fig23, RowSizeProperty,
                         ::testing::Values(2048, 4096, 8192, 16384, 32768,
                                           65536, 131072));

} // namespace
} // namespace padc::dram
