/**
 * @file
 * Unit tests for the DramSystem facade: channel construction, routing,
 * and aggregate statistics.
 */

#include <gtest/gtest.h>

#include "dram/dram_system.hh"

namespace padc::dram
{
namespace
{

TEST(DramSystemTest, ConstructsConfiguredChannels)
{
    DramConfig cfg;
    cfg.geometry.channels = 4;
    DramSystem dram(cfg);
    EXPECT_EQ(dram.numChannels(), 4u);
    for (std::uint32_t ch = 0; ch < 4; ++ch)
        EXPECT_EQ(dram.channel(ch).numBanks(),
                  cfg.geometry.banks_per_channel);
}

TEST(DramSystemTest, MapRoutesAcrossChannels)
{
    DramConfig cfg;
    cfg.geometry.channels = 2;
    DramSystem dram(cfg);
    bool saw[2] = {false, false};
    for (Addr addr = 0; addr < 64 * kLineBytes; addr += kLineBytes)
        saw[dram.map(addr).channel] = true;
    EXPECT_TRUE(saw[0]);
    EXPECT_TRUE(saw[1]);
}

TEST(DramSystemTest, TotalStatsAggregatesChannels)
{
    DramConfig cfg;
    cfg.geometry.channels = 2;
    DramSystem dram(cfg);
    dram.channel(0).activate(0, 1, 0);
    dram.channel(1).activate(0, 2, 0);
    dram.channel(1).activate(1, 3, cfg.timing.toCpu(cfg.timing.tRRD));
    const ChannelStats total = dram.totalStats();
    EXPECT_EQ(total.activates, 3u);
    EXPECT_EQ(total.reads, 0u);
}

TEST(DramSystemTest, ChannelsAreIndependent)
{
    DramConfig cfg;
    cfg.geometry.channels = 2;
    DramSystem dram(cfg);
    dram.channel(0).activate(3, 42, 0);
    EXPECT_EQ(dram.channel(0).openRow(3), 42u);
    EXPECT_EQ(dram.channel(1).openRow(3), kNoOpenRow);
    // Command bus of channel 1 unaffected by channel 0's command.
    EXPECT_TRUE(dram.channel(1).commandBusFree(0));
}

TEST(DramSystemTest, ConfigRoundTrip)
{
    DramConfig cfg;
    cfg.geometry.row_bytes = 8192;
    cfg.timing.tCL = 11;
    DramSystem dram(cfg);
    EXPECT_EQ(dram.config().geometry.row_bytes, 8192u);
    EXPECT_EQ(dram.config().timing.tCL, 11u);
    EXPECT_EQ(dram.addressMap().geometry().row_bytes, 8192u);
}

} // namespace
} // namespace padc::dram
