/**
 * @file
 * Unit tests for the DRAM bank state machine: command legality windows,
 * open-row tracking, auto-precharge, and refresh.
 */

#include <gtest/gtest.h>

#include <set>

#include "dram/bank.hh"

namespace padc::dram
{
namespace
{

class BankTest : public ::testing::Test
{
  protected:
    TimingParams timing_; // defaults: tRCD=tRP=tCL=10, tRAS=24, tRC=34,
                          // ratio 6
    Cycle
    cpu(std::uint32_t dram_cycles) const
    {
        return timing_.toCpu(dram_cycles);
    }
};

TEST_F(BankTest, StartsPrechargedAndActivatable)
{
    Bank bank(timing_);
    EXPECT_FALSE(bank.isOpen());
    EXPECT_EQ(bank.openRow(), kNoOpenRow);
    EXPECT_TRUE(bank.canActivate(0));
    EXPECT_FALSE(bank.canColumn(0));
    EXPECT_FALSE(bank.canPrecharge(0));
}

TEST_F(BankTest, ActivateOpensRowAfterTrcd)
{
    Bank bank(timing_);
    bank.activate(0, 42);
    EXPECT_TRUE(bank.isOpen());
    EXPECT_EQ(bank.openRow(), 42u);
    EXPECT_FALSE(bank.canActivate(0)); // already open
    EXPECT_FALSE(bank.canColumn(cpu(timing_.tRCD) - 1));
    EXPECT_TRUE(bank.canColumn(cpu(timing_.tRCD)));
}

TEST_F(BankTest, PrechargeNotBeforeTras)
{
    Bank bank(timing_);
    bank.activate(0, 1);
    EXPECT_FALSE(bank.canPrecharge(cpu(timing_.tRAS) - 1));
    EXPECT_TRUE(bank.canPrecharge(cpu(timing_.tRAS)));
    bank.precharge(cpu(timing_.tRAS));
    EXPECT_FALSE(bank.isOpen());
}

TEST_F(BankTest, ActivateToActivateRespectsTrc)
{
    Bank bank(timing_);
    bank.activate(0, 1);
    bank.precharge(cpu(timing_.tRAS));
    // tRP after precharge AND tRC after the first activate.
    const Cycle trp_ready = cpu(timing_.tRAS) + cpu(timing_.tRP);
    const Cycle trc_ready = cpu(timing_.tRC);
    const Cycle ready = std::max(trp_ready, trc_ready);
    EXPECT_FALSE(bank.canActivate(ready - 1));
    EXPECT_TRUE(bank.canActivate(ready));
}

TEST_F(BankTest, ReadReturnsDataEndAndGatesPrecharge)
{
    Bank bank(timing_);
    bank.activate(0, 7);
    const Cycle col_at = cpu(timing_.tRCD);
    const Cycle data_end = bank.read(col_at, false);
    EXPECT_EQ(data_end, col_at + cpu(timing_.tCL) + cpu(timing_.tBURST));
    // Row stays open; precharge gated by max(tRAS, read+tRTP).
    EXPECT_TRUE(bank.isOpen());
    const Cycle pre_ready =
        std::max(cpu(timing_.tRAS), col_at + cpu(timing_.tRTP));
    EXPECT_FALSE(bank.canPrecharge(pre_ready - 1));
    EXPECT_TRUE(bank.canPrecharge(pre_ready));
}

TEST_F(BankTest, WriteGatesPrechargeByWriteRecovery)
{
    Bank bank(timing_);
    bank.activate(0, 7);
    const Cycle col_at = cpu(timing_.tRCD);
    const Cycle data_end = bank.write(col_at, false);
    EXPECT_EQ(data_end, col_at + cpu(timing_.tCWL) + cpu(timing_.tBURST));
    const Cycle pre_ready = data_end + cpu(timing_.tWR);
    EXPECT_FALSE(bank.canPrecharge(pre_ready - 1));
    EXPECT_TRUE(bank.canPrecharge(pre_ready));
}

TEST_F(BankTest, AutoPrechargeClosesRow)
{
    Bank bank(timing_);
    bank.activate(0, 7);
    bank.read(cpu(timing_.tRCD), /*auto_precharge=*/true);
    EXPECT_FALSE(bank.isOpen());
    // Next activate must wait for the implicit precharge + tRP.
    const Cycle pre_at =
        std::max(cpu(timing_.tRAS), cpu(timing_.tRCD) + cpu(timing_.tRTP));
    EXPECT_FALSE(bank.canActivate(pre_at + cpu(timing_.tRP) - 1));
    EXPECT_TRUE(bank.canActivate(
        std::max(pre_at + cpu(timing_.tRP), cpu(timing_.tRC))));
}

TEST_F(BankTest, RefreshClosesAndBlocks)
{
    Bank bank(timing_);
    bank.activate(0, 7);
    const Cycle ready = 100000;
    bank.refresh(ready);
    EXPECT_FALSE(bank.isOpen());
    EXPECT_FALSE(bank.canActivate(ready - 1));
    EXPECT_TRUE(bank.canActivate(ready));
}

TEST_F(BankTest, StatsCountCommands)
{
    Bank bank(timing_);
    bank.activate(0, 1);
    bank.read(cpu(timing_.tRCD), false);
    bank.read(cpu(timing_.tRCD) + cpu(timing_.tCCD), false);
    bank.precharge(cpu(100));
    bank.activate(cpu(200), 2);
    bank.write(cpu(200) + cpu(timing_.tRCD), false);
    EXPECT_EQ(bank.stats().activates, 2u);
    EXPECT_EQ(bank.stats().reads, 2u);
    EXPECT_EQ(bank.stats().writes, 1u);
    EXPECT_EQ(bank.stats().precharges, 1u);
}

/** Property: a legal command sequence never regresses the open row. */
TEST_F(BankTest, RowConsistencyOverSequence)
{
    Bank bank(timing_);
    Cycle now = 0;
    for (std::uint64_t row = 0; row < 20; ++row) {
        while (!bank.canActivate(now))
            now += timing_.cpu_per_dram_cycle;
        bank.activate(now, row);
        EXPECT_EQ(bank.openRow(), row);
        while (!bank.canColumn(now))
            now += timing_.cpu_per_dram_cycle;
        bank.read(now, false);
        EXPECT_EQ(bank.openRow(), row);
        while (!bank.canPrecharge(now))
            now += timing_.cpu_per_dram_cycle;
        bank.precharge(now);
        EXPECT_FALSE(bank.isOpen());
    }
    EXPECT_EQ(bank.stats().activates, 20u);
}

} // namespace
} // namespace padc::dram
