/**
 * @file
 * Durability tests of the serve daemon's jobs.jsonl queue: lifecycle
 * transitions, exactly-once reconstruction on reopen (including the
 * started-without-terminal => pending+resumed rule that makes a killed
 * daemon's in-flight job resumable), torn-tail repair, foreign-line
 * tolerance, and restart-stable id allocation.
 */

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "serve/jobstore.hh"

namespace padc::serve
{
namespace
{

namespace fs = std::filesystem;

/** A per-test jobs.jsonl path under the system temp dir. */
class ServeJobStore : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        path_ = (fs::temp_directory_path() /
                 ("padc_jobstore_test." + std::to_string(::getpid()) +
                  "." +
                  ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name()))
                    .string();
        fs::remove(path_);
    }

    void TearDown() override { fs::remove(path_); }

    void appendRaw(const std::string &bytes) const
    {
        std::ofstream out(path_, std::ios::app | std::ios::binary);
        out << bytes;
    }

    std::string path_;
};

TEST_F(ServeJobStore, LifecycleTransitionsAndSnapshots)
{
    JobStore store(path_);
    ASSERT_TRUE(store.ok()) << store.error();

    const std::uint64_t a = store.submit("smoke", std::nullopt, 100);
    const std::uint64_t b = store.submit("smoke_grid", 42, 101);
    EXPECT_EQ(a, 1u);
    EXPECT_EQ(b, 2u);
    EXPECT_EQ(store.pendingCount(), 2u);
    ASSERT_TRUE(store.nextPending().has_value());
    EXPECT_EQ(*store.nextPending(), a); // FIFO: oldest first

    ASSERT_TRUE(store.start(a, 102));
    EXPECT_FALSE(store.start(a, 103)); // already running
    EXPECT_EQ(store.pendingCount(), 1u);
    EXPECT_EQ(*store.nextPending(), b);

    ASSERT_TRUE(store.finish(a, "ok", "", 104));
    ASSERT_TRUE(store.start(b, 105));
    ASSERT_TRUE(store.finish(b, "truncated", "fault", 106));

    const auto ja = store.job(a);
    const auto jb = store.job(b);
    ASSERT_TRUE(ja && jb);
    EXPECT_EQ(ja->state, JobState::Done); // "ok" maps to Done
    EXPECT_EQ(ja->attempts, 1u);
    EXPECT_EQ(jb->state, JobState::Failed); // anything else -> Failed
    EXPECT_EQ(jb->status, "truncated");
    EXPECT_EQ(jb->detail, "fault");
    ASSERT_TRUE(jb->seed.has_value());
    EXPECT_EQ(*jb->seed, 42u);

    // Terminal jobs reject further transitions.
    EXPECT_FALSE(store.start(a, 107));
    EXPECT_FALSE(store.cancel(a, "late", 108));
    EXPECT_FALSE(store.finish(b, "ok", "", 109));
    EXPECT_FALSE(store.cancel(999, "unknown", 110));
}

TEST_F(ServeJobStore, ReloadReconstructsTerminalAndPendingStates)
{
    {
        JobStore store(path_);
        ASSERT_TRUE(store.ok()) << store.error();
        store.submit("smoke", std::nullopt, 1);
        store.submit("smoke_grid", 7, 2);
        store.submit("fig09", std::nullopt, 3);
        ASSERT_TRUE(store.start(1, 4));
        ASSERT_TRUE(store.finish(1, "ok", "", 5));
        ASSERT_TRUE(store.cancel(3, "operator request", 6));
    }
    JobStore store(path_);
    ASSERT_TRUE(store.ok()) << store.error();
    EXPECT_EQ(store.loadedJobs(), 3u);
    EXPECT_EQ(store.resumedJobs(), 0u);
    const auto jobs = store.jobs();
    ASSERT_EQ(jobs.size(), 3u);
    EXPECT_EQ(jobs[0].state, JobState::Done);
    EXPECT_EQ(jobs[1].state, JobState::Pending);
    EXPECT_EQ(jobs[1].experiment, "smoke_grid");
    ASSERT_TRUE(jobs[1].seed.has_value());
    EXPECT_EQ(*jobs[1].seed, 7u);
    EXPECT_EQ(jobs[1].submitted_t_ms, 2u);
    EXPECT_EQ(jobs[2].state, JobState::Cancelled);
    EXPECT_EQ(jobs[2].detail, "operator request");
    // Only the untouched submit is still runnable.
    EXPECT_EQ(store.pendingCount(), 1u);
    EXPECT_EQ(*store.nextPending(), 2u);
}

TEST_F(ServeJobStore, StartedWithoutTerminalResumesAsPending)
{
    {
        JobStore store(path_);
        ASSERT_TRUE(store.ok()) << store.error();
        store.submit("smoke_grid", std::nullopt, 1);
        ASSERT_TRUE(store.start(1, 2));
        // Daemon dies here: no finished/cancelled record ever lands.
    }
    JobStore store(path_);
    ASSERT_TRUE(store.ok()) << store.error();
    EXPECT_EQ(store.resumedJobs(), 1u);
    const auto job = store.job(1);
    ASSERT_TRUE(job.has_value());
    EXPECT_EQ(job->state, JobState::Pending);
    EXPECT_TRUE(job->resumed);
    EXPECT_EQ(job->attempts, 1u); // the lost attempt still counts
    EXPECT_EQ(*store.nextPending(), 1u);
}

TEST_F(ServeJobStore, RequeueAppendsNothing)
{
    std::uintmax_t after_start = 0;
    {
        JobStore store(path_);
        ASSERT_TRUE(store.ok()) << store.error();
        store.submit("smoke", std::nullopt, 1);
        ASSERT_TRUE(store.start(1, 2));
        after_start = fs::file_size(path_);
        ASSERT_TRUE(store.requeue(1));
        EXPECT_FALSE(store.requeue(1)); // only Running jobs requeue
        const auto job = store.job(1);
        ASSERT_TRUE(job.has_value());
        EXPECT_EQ(job->state, JobState::Pending);
        EXPECT_TRUE(job->resumed);
    }
    // The absent terminal record IS the durable resumable marker:
    // requeue must not grow the log, and a reopen reconstructs the
    // same pending+resumed state from started-without-terminal.
    EXPECT_EQ(fs::file_size(path_), after_start);
    JobStore store(path_);
    ASSERT_TRUE(store.ok()) << store.error();
    EXPECT_EQ(store.resumedJobs(), 1u);
    EXPECT_EQ(*store.nextPending(), 1u);
}

TEST_F(ServeJobStore, TornTailIsRepairedAndSkipped)
{
    {
        JobStore store(path_);
        ASSERT_TRUE(store.ok()) << store.error();
        store.submit("smoke", std::nullopt, 1);
        store.submit("smoke_grid", std::nullopt, 2);
    }
    // A daemon killed mid-append leaves a partial line with no newline.
    appendRaw(R"({"padc":"padc-serve-job-v1","ev":"submitted","job":"3)");
    {
        JobStore store(path_);
        ASSERT_TRUE(store.ok()) << store.error();
        EXPECT_EQ(store.loadedJobs(), 2u); // torn job 3 never existed
        // Repair terminated the torn line, so the next append starts
        // on a fresh line and reuses the torn-away id.
        EXPECT_EQ(store.submit("fig09", std::nullopt, 3), 3u);
    }
    JobStore store(path_);
    ASSERT_TRUE(store.ok()) << store.error();
    EXPECT_EQ(store.loadedJobs(), 3u);
    const auto job = store.job(3);
    ASSERT_TRUE(job.has_value());
    EXPECT_EQ(job->experiment, "fig09");
}

TEST_F(ServeJobStore, ForeignAndMalformedLinesAreSkipped)
{
    {
        JobStore store(path_);
        ASSERT_TRUE(store.ok()) << store.error();
        store.submit("smoke", std::nullopt, 1);
    }
    appendRaw("not json at all\n");
    appendRaw(R"({"padc":"padc-obs-event-v1","ev":"point_done"})"
              "\n");
    appendRaw(R"({"padc":"padc-serve-job-v1","ev":"warp","job":"9"})"
              "\n");
    {
        JobStore store(path_);
        ASSERT_TRUE(store.ok()) << store.error();
        EXPECT_EQ(store.loadedJobs(), 1u);
        store.submit("smoke_grid", std::nullopt, 2);
    }
    JobStore store(path_);
    ASSERT_TRUE(store.ok()) << store.error();
    EXPECT_EQ(store.loadedJobs(), 2u);
}

TEST_F(ServeJobStore, JobIdsAreRestartStable)
{
    {
        JobStore store(path_);
        ASSERT_TRUE(store.ok()) << store.error();
        EXPECT_EQ(store.submit("smoke", std::nullopt, 1), 1u);
        EXPECT_EQ(store.submit("smoke", std::nullopt, 2), 2u);
        ASSERT_TRUE(store.start(1, 3));
        ASSERT_TRUE(store.finish(1, "ok", "", 4));
    }
    JobStore store(path_);
    ASSERT_TRUE(store.ok()) << store.error();
    // next id = max seen + 1, even though job 1 is terminal.
    EXPECT_EQ(store.submit("smoke", std::nullopt, 5), 3u);
}

TEST_F(ServeJobStore, UnwritableLogLatchesErrorInsteadOfThrowing)
{
    JobStore store("/nonexistent-dir/padc/jobs.jsonl");
    EXPECT_FALSE(store.ok());
    EXPECT_FALSE(store.error().empty());
}

} // namespace
} // namespace padc::serve
