/**
 * @file
 * Codec tests of the `padc serve` client/daemon protocol: request and
 * response round-trips (including the u64-as-decimal-string precision
 * convention), strict rejection of malformed payloads, and the
 * state-directory layout helpers daemon/client/tests all share.
 */

#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "serve/protocol.hh"

namespace padc::serve
{
namespace
{

TEST(ServeProtocol, StateDirLayoutHelpers)
{
    EXPECT_EQ(socketPath("/tmp/state"), "/tmp/state/serve.sock");
    EXPECT_EQ(lockPath("/tmp/state"), "/tmp/state/serve.lock");
    EXPECT_EQ(jobsLogPath("/tmp/state"), "/tmp/state/jobs.jsonl");
    EXPECT_EQ(jobDir("/tmp/state", 7), "/tmp/state/jobs/7");
    // A trailing slash must not produce a double slash.
    EXPECT_EQ(socketPath("/tmp/state/"), "/tmp/state/serve.sock");
}

TEST(ServeProtocol, RequestRoundTripsEveryOp)
{
    for (const ServeRequest::Op op :
         {ServeRequest::Op::Ping, ServeRequest::Op::Submit,
          ServeRequest::Op::Jobs, ServeRequest::Op::Cancel,
          ServeRequest::Op::Metrics, ServeRequest::Op::Status,
          ServeRequest::Op::Shutdown}) {
        ServeRequest request;
        request.op = op;
        ServeRequest decoded;
        std::string error;
        ASSERT_TRUE(decodeRequest(encodeRequest(request), &decoded,
                                  &error))
            << error;
        EXPECT_EQ(decoded.op, op);
    }
}

TEST(ServeProtocol, SubmitRequestRoundTripsSelectorsAndSeed)
{
    ServeRequest request;
    request.op = ServeRequest::Op::Submit;
    request.selectors = {"smoke", "fig1*", "overall"};
    // Past 2^53: a JSON-number encoding would silently round this.
    request.seed = (std::uint64_t{1} << 63) + 12345;
    ServeRequest decoded;
    std::string error;
    ASSERT_TRUE(decodeRequest(encodeRequest(request), &decoded, &error))
        << error;
    EXPECT_EQ(decoded.selectors, request.selectors);
    ASSERT_TRUE(decoded.seed.has_value());
    EXPECT_EQ(*decoded.seed, *request.seed);
}

TEST(ServeProtocol, CancelRequestCarriesJobId)
{
    ServeRequest request;
    request.op = ServeRequest::Op::Cancel;
    request.job_id = 42;
    ServeRequest decoded;
    std::string error;
    ASSERT_TRUE(decodeRequest(encodeRequest(request), &decoded, &error))
        << error;
    EXPECT_EQ(decoded.job_id, 42u);
}

TEST(ServeProtocol, MetricsJsonFlagRoundTrips)
{
    ServeRequest request;
    request.op = ServeRequest::Op::Metrics;
    request.metrics_json = true;
    ServeRequest decoded;
    std::string error;
    ASSERT_TRUE(decodeRequest(encodeRequest(request), &decoded, &error))
        << error;
    EXPECT_TRUE(decoded.metrics_json);
}

TEST(ServeProtocol, ResponseRoundTripsJobsErrorsIdsAndText)
{
    ServeResponse response;
    response.ok = false;
    response.errors = {"unknown experiment 'x'", "queue is full"};
    response.job_ids = {1, 2, (std::uint64_t{1} << 60) + 9};
    JobView job;
    job.id = 2;
    job.experiment = "smoke_grid";
    job.state = kJobRunning;
    job.status = "ok";
    job.detail = "d";
    job.attempts = 3;
    job.seed = 7;
    job.submitted_t_ms = 1234567890123;
    job.dir = "jobs/2";
    response.jobs.push_back(job);
    response.text = "# HELP something\n";

    ServeResponse decoded;
    std::string error;
    ASSERT_TRUE(
        decodeResponse(encodeResponse(response), &decoded, &error))
        << error;
    EXPECT_FALSE(decoded.ok);
    EXPECT_EQ(decoded.errors, response.errors);
    EXPECT_EQ(decoded.job_ids, response.job_ids);
    ASSERT_EQ(decoded.jobs.size(), 1u);
    EXPECT_EQ(decoded.jobs[0].id, 2u);
    EXPECT_EQ(decoded.jobs[0].experiment, "smoke_grid");
    EXPECT_EQ(decoded.jobs[0].state, kJobRunning);
    EXPECT_EQ(decoded.jobs[0].status, "ok");
    EXPECT_EQ(decoded.jobs[0].detail, "d");
    EXPECT_EQ(decoded.jobs[0].attempts, 3u);
    ASSERT_TRUE(decoded.jobs[0].seed.has_value());
    EXPECT_EQ(*decoded.jobs[0].seed, 7u);
    EXPECT_EQ(decoded.jobs[0].submitted_t_ms, 1234567890123u);
    EXPECT_EQ(decoded.jobs[0].dir, "jobs/2");
    EXPECT_EQ(decoded.text, response.text);
}

TEST(ServeProtocol, MalformedRequestsAreRejectedWithDiagnostics)
{
    ServeRequest request;
    std::string error;

    EXPECT_FALSE(decodeRequest("not json", &request, &error));
    EXPECT_FALSE(error.empty());

    EXPECT_FALSE(decodeRequest("[1, 2]", &request, &error));

    // Wrong schema tag: a result frame must not pass as a request.
    EXPECT_FALSE(decodeRequest(
        R"({"padc": "padc-bench-result-v1", "op": "ping"})", &request,
        &error));
    EXPECT_NE(error.find("padc-serve-request-v1"), std::string::npos);

    EXPECT_FALSE(decodeRequest(
        R"({"padc": "padc-serve-request-v1", "op": "reboot"})", &request,
        &error));
    EXPECT_NE(error.find("unknown op"), std::string::npos);

    // Signed / non-decimal u64 strings are rejected, never wrapped.
    EXPECT_FALSE(decodeRequest(
        R"({"padc": "padc-serve-request-v1", "op": "submit", )"
        R"("seed": "-1"})",
        &request, &error));
    EXPECT_FALSE(decodeRequest(
        R"({"padc": "padc-serve-request-v1", "op": "cancel", )"
        R"("job": "12x"})",
        &request, &error));
}

TEST(ServeProtocol, MalformedResponsesAreRejected)
{
    ServeResponse response;
    std::string error;
    EXPECT_FALSE(decodeResponse("{}", &response, &error));
    EXPECT_FALSE(decodeResponse(
        R"({"padc": "padc-serve-response-v1"})", &response, &error));
    EXPECT_NE(error.find("ok"), std::string::npos);
    EXPECT_FALSE(decodeResponse(
        R"({"padc": "padc-serve-response-v1", "ok": true, )"
        R"("job_ids": ["nope"]})",
        &response, &error));
}

} // namespace
} // namespace padc::serve
