/**
 * @file
 * Kill-matrix integration tests of `padc serve`, driving the real
 * driver binary (PADC_DRIVER_BIN) as the daemon and mixing the CLI
 * subcommands (submit/jobs/cancel/metrics/status) with direct protocol
 * clients (serve::ServeClient). The matrix: daemon round-trips must be
 * bit-identical to direct `padc run --workers N`; a SIGKILLed daemon
 * must resume every in-flight job exactly-once on restart; SIGTERM must
 * drain gracefully (exit 0, job left resumable); a second daemon on a
 * live state dir must refuse; stale locks/sockets reclaim; admission
 * accumulates errors; and concurrent submit/cancel clients must not
 * corrupt the queue (asan/tsan fodder).
 */

#include <fcntl.h>
#include <signal.h>
#include <spawn.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "exp/json.hh"
#include "serve/client.hh"
#include "serve/daemon.hh"
#include "serve/protocol.hh"

extern char **environ;

namespace padc::serve
{
namespace
{

namespace fs = std::filesystem;

fs::path
freshDir(const std::string &name)
{
    // Unique per process (ctest runs cases concurrently) and short:
    // <dir>/serve.sock must fit in sun_path.
    const auto dir = fs::temp_directory_path() /
                     ("padc_serve_" + name + "." +
                      std::to_string(::getpid()));
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

/**
 * Spawn PADC_DRIVER_BIN with extra environment entries, stdout/stderr
 * redirected to @p log. Returns the child pid (or -1).
 */
pid_t
spawnDriver(const std::vector<std::string> &args,
            const std::vector<std::string> &env_extra,
            const std::string &log)
{
    std::vector<std::string> argv_store = {PADC_DRIVER_BIN};
    argv_store.insert(argv_store.end(), args.begin(), args.end());
    std::vector<char *> argv;
    for (auto &arg : argv_store)
        argv.push_back(arg.data());
    argv.push_back(nullptr);

    std::vector<std::string> env_store;
    for (char **e = environ; *e != nullptr; ++e)
        env_store.push_back(*e);
    env_store.insert(env_store.end(), env_extra.begin(),
                     env_extra.end());
    std::vector<char *> envp;
    for (auto &entry : env_store)
        envp.push_back(entry.data());
    envp.push_back(nullptr);

    posix_spawn_file_actions_t actions;
    posix_spawn_file_actions_init(&actions);
    posix_spawn_file_actions_addopen(&actions, STDOUT_FILENO,
                                     log.c_str(),
                                     O_WRONLY | O_CREAT | O_TRUNC, 0644);
    posix_spawn_file_actions_adddup2(&actions, STDOUT_FILENO,
                                     STDERR_FILENO);
    pid_t pid = -1;
    const int rc = ::posix_spawn(&pid, PADC_DRIVER_BIN, &actions,
                                 nullptr, argv.data(), envp.data());
    posix_spawn_file_actions_destroy(&actions);
    return rc == 0 ? pid : -1;
}

/** Wait for @p pid; exit status, or 128+signal when killed. */
int
waitDriver(pid_t pid)
{
    int status = 0;
    while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
    }
    if (WIFEXITED(status))
        return WEXITSTATUS(status);
    if (WIFSIGNALED(status))
        return 128 + WTERMSIG(status);
    return -1;
}

int
runDriver(const std::vector<std::string> &args,
          const std::vector<std::string> &env_extra,
          const std::string &log)
{
    const pid_t pid = spawnDriver(args, env_extra, log);
    EXPECT_GT(pid, 0);
    return pid > 0 ? waitDriver(pid) : -1;
}

std::string
slurp(const fs::path &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

std::size_t
countOccurrences(const std::string &text, const std::string &needle)
{
    std::size_t count = 0;
    for (std::size_t pos = text.find(needle); pos != std::string::npos;
         pos = text.find(needle, pos + needle.size()))
        ++count;
    return count;
}

exp::JsonValue
loadBench(const fs::path &dir, const std::string &file)
{
    exp::JsonValue doc;
    std::string error;
    const auto path = dir / file;
    EXPECT_TRUE(exp::parseJson(slurp(path), &doc, &error))
        << path << ": " << error;
    return doc;
}

/** Journal lines on disk (complete, newline-terminated ones). */
std::size_t
journalLines(const std::string &path)
{
    const std::string text = slurp(path);
    std::size_t lines = 0;
    for (const char c : text)
        lines += c == '\n' ? 1 : 0;
    return lines;
}

/** Poll until the journal holds @p want lines (worker progress gate). */
bool
awaitJournalLines(const std::string &path, std::size_t want)
{
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(60);
    while (std::chrono::steady_clock::now() < deadline) {
        if (journalLines(path) >= want)
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return false;
}

/**
 * Poll until the daemon on @p state_dir answers a ping. Daemon startup
 * includes spawning the worker pool, which can take seconds on a
 * loaded machine -- never use a fixed sleep for readiness.
 */
bool
awaitDaemon(const std::string &state_dir)
{
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(60);
    while (std::chrono::steady_clock::now() < deadline) {
        ServeRequest request;
        request.op = ServeRequest::Op::Ping;
        ServeResponse response;
        std::string error;
        if (requestOnce(state_dir, request, &response, &error) &&
            response.ok)
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    return false;
}

/** Submit @p selectors over the protocol; returns the response. */
ServeResponse
submitJobs(const std::string &state_dir,
           const std::vector<std::string> &selectors)
{
    ServeRequest request;
    request.op = ServeRequest::Op::Submit;
    request.selectors = selectors;
    ServeResponse response;
    std::string error;
    EXPECT_TRUE(requestOnce(state_dir, request, &response, &error))
        << error;
    return response;
}

std::vector<JobView>
listJobs(const std::string &state_dir)
{
    ServeRequest request;
    request.op = ServeRequest::Op::Jobs;
    ServeResponse response;
    std::string error;
    EXPECT_TRUE(requestOnce(state_dir, request, &response, &error))
        << error;
    return response.jobs;
}

/**
 * Compare the simulation-outcome half of two BENCH documents: key,
 * label, status, detail, cycles, and every metric value of every
 * point. Deliberately ignores attempts (execution history, which
 * kills and resumes legitimately change) and wall-clock/profile.
 */
void
expectSamePoints(const exp::JsonValue &a, const exp::JsonValue &b)
{
    const exp::JsonValue *pa = a.find("points");
    const exp::JsonValue *pb = b.find("points");
    ASSERT_NE(pa, nullptr);
    ASSERT_NE(pb, nullptr);
    ASSERT_EQ(pa->array.size(), pb->array.size());
    for (std::size_t i = 0; i < pa->array.size(); ++i) {
        const exp::JsonValue &x = pa->array[i];
        const exp::JsonValue &y = pb->array[i];
        EXPECT_EQ(x.find("key")->string, y.find("key")->string) << i;
        EXPECT_EQ(x.find("label")->string, y.find("label")->string) << i;
        EXPECT_EQ(x.find("status")->string, y.find("status")->string)
            << i;
        EXPECT_EQ(x.find("detail")->string, y.find("detail")->string)
            << i;
        EXPECT_EQ(x.find("cycles")->number, y.find("cycles")->number)
            << i;
        const exp::JsonValue *ma = x.find("metrics");
        const exp::JsonValue *mb = y.find("metrics");
        ASSERT_EQ(ma->object.size(), mb->object.size()) << i;
        for (const auto &[name, value] : ma->object) {
            const exp::JsonValue *other = mb->find(name);
            ASSERT_NE(other, nullptr) << i << "." << name;
            EXPECT_EQ(value.number, other->number) << i << "." << name;
        }
    }
}

TEST(ServeDaemon, RoundTripJobsMatchDirectRunBitIdentically)
{
    const auto ref_dir = freshDir("rt_ref");
    const auto state = freshDir("rt");
    ASSERT_EQ(runDriver({"run", "smoke_grid", "--workers", "2", "--out",
                         ref_dir.string()},
                        {}, (ref_dir / "log.txt").string()),
              0);

    const pid_t daemon =
        spawnDriver({"serve", state.string(), "--workers", "2"}, {},
                    (state / "daemon.log").string());
    ASSERT_GT(daemon, 0);
    ASSERT_TRUE(awaitDaemon(state.string()));

    // Submit through the CLI, jobs 1..2, and block until terminal.
    ASSERT_EQ(runDriver({"submit", state.string(), "smoke", "smoke_grid",
                         "--wait"},
                        {}, (state / "submit.log").string()),
              0);

    const auto jobs = listJobs(state.string());
    ASSERT_EQ(jobs.size(), 2u);
    for (const JobView &job : jobs) {
        EXPECT_EQ(job.state, kJobDone) << job.id;
        EXPECT_EQ(job.attempts, 1u) << job.id;
    }
    EXPECT_EQ(jobs[0].experiment, "smoke");
    EXPECT_EQ(jobs[1].experiment, "smoke_grid");

    // The daemon job's BENCH must be point-identical to the direct run.
    expectSamePoints(loadBench(ref_dir, "BENCH_smoke_grid.json"),
                     loadBench(state / "jobs" / "2",
                               "BENCH_smoke_grid.json"));
    EXPECT_TRUE(fs::exists(state / "jobs" / "1" / "BENCH_smoke.json"));

    // `padc jobs --json` emits the machine-readable listing.
    ASSERT_EQ(runDriver({"jobs", state.string(), "--json"}, {},
                        (state / "jobs.log").string()),
              0);
    exp::JsonValue listing;
    std::string error;
    ASSERT_TRUE(
        exp::parseJson(slurp(state / "jobs.log"), &listing, &error))
        << error;
    EXPECT_EQ(listing.find("schema")->string, "padc-serve-jobs-v1");
    EXPECT_EQ(listing.find("jobs")->array.size(), 2u);

    // `padc metrics` surfaces the daemon's registry, including the
    // pool counters that prove the jobs ran on worker processes.
    ASSERT_EQ(runDriver({"metrics", state.string()}, {},
                        (state / "metrics.log").string()),
              0);
    const std::string metrics = slurp(state / "metrics.log");
    EXPECT_NE(metrics.find("padc_serve_jobs_submitted_total"),
              std::string::npos);
    EXPECT_NE(metrics.find("padc_serve_jobs_done_total"),
              std::string::npos);
    EXPECT_NE(metrics.find("padc_points_dispatched_total"),
              std::string::npos);

    // The daemon's own status document.
    ServeRequest status_request;
    status_request.op = ServeRequest::Op::Status;
    ServeResponse status_response;
    ASSERT_TRUE(requestOnce(state.string(), status_request,
                            &status_response, &error))
        << error;
    ASSERT_TRUE(status_response.ok);
    EXPECT_NE(status_response.text.find(kServeStatusSchema),
              std::string::npos);
    EXPECT_NE(status_response.text.find("\"running\""),
              std::string::npos);

    // Per-job sweep status: the daemon maintains a status.json each
    // `padc status` can render, text and JSON.
    ASSERT_EQ(runDriver({"status", (state / "jobs" / "2").string(),
                         "--json"},
                        {}, (state / "status.log").string()),
              0);
    exp::JsonValue status_doc;
    ASSERT_TRUE(
        exp::parseJson(slurp(state / "status.log"), &status_doc, &error))
        << error;
    EXPECT_EQ(status_doc.find("schema")->string, "padc-sweep-status-v1");

    ASSERT_EQ(::kill(daemon, SIGTERM), 0);
    EXPECT_EQ(waitDriver(daemon), 0);
    EXPECT_NE(slurp(state / "daemon.log")
                  .find("drained; 0 job(s) left resumable"),
              std::string::npos);
    EXPECT_FALSE(fs::exists(socketPath(state.string())));
    EXPECT_FALSE(fs::exists(lockPath(state.string())));

    fs::remove_all(ref_dir);
    fs::remove_all(state);
}

TEST(ServeDaemon, SigkilledDaemonResumesEveryJobExactlyOnce)
{
    const auto ref_dir = freshDir("kill_ref");
    const auto state = freshDir("kill");
    ASSERT_EQ(runDriver({"run", "smoke_grid", "--workers", "0", "--out",
                         ref_dir.string()},
                        {}, (ref_dir / "log.txt").string()),
              0);

    // hang:9 wedges a worker on smoke_grid's last point (index 8)
    // while the first eight complete and hit the per-job journal;
    // SIGKILL the daemon mid-hang, exactly like an OOM kill.
    const pid_t first =
        spawnDriver({"serve", state.string(), "--workers", "2"},
                    {"PADC_FAULT_INJECT=hang:9",
                     "PADC_WORKER_TIMEOUT_MS=600000"},
                    (state / "daemon1.log").string());
    ASSERT_GT(first, 0);
    ASSERT_TRUE(awaitDaemon(state.string()));

    const ServeResponse submitted =
        submitJobs(state.string(), {"smoke_grid", "smoke"});
    ASSERT_TRUE(submitted.ok);
    ASSERT_EQ(submitted.job_ids, (std::vector<std::uint64_t>{1, 2}));

    const std::string journal =
        (state / "jobs" / "1" / "sweep.padcjournal").string();
    ASSERT_TRUE(awaitJournalLines(journal, 8));
    ASSERT_EQ(::kill(first, SIGKILL), 0);
    EXPECT_EQ(waitDriver(first), 128 + SIGKILL);

    // Restart fault-free on the same state dir: job 1 must resume
    // (replaying its eight journaled points), job 2 was still pending
    // and must simply run.
    const pid_t second =
        spawnDriver({"serve", state.string(), "--workers", "2"}, {},
                    (state / "daemon2.log").string());
    ASSERT_GT(second, 0);
    ASSERT_TRUE(awaitDaemon(state.string()));
    EXPECT_NE(slurp(state / "daemon2.log").find("1 resumed"),
              std::string::npos);

    std::string error;
    const auto done =
        awaitJobs(state.string(), {1, 2}, 120'000, 50, &error);
    ASSERT_TRUE(done.has_value()) << error;
    EXPECT_EQ((*done)[0].state, kJobDone);
    EXPECT_EQ((*done)[1].state, kJobDone);
    EXPECT_EQ((*done)[0].attempts, 2u); // killed attempt + resumed one
    EXPECT_EQ((*done)[1].attempts, 1u);

    // Exactly-once: eight points replayed from the journal (attempts
    // 0), one executed, and the merged BENCH is point-identical to the
    // direct fault-free run.
    EXPECT_EQ(journalLines(journal), 9u);
    const exp::JsonValue resumed =
        loadBench(state / "jobs" / "1", "BENCH_smoke_grid.json");
    expectSamePoints(loadBench(ref_dir, "BENCH_smoke_grid.json"),
                     resumed);
    std::size_t replayed = 0;
    std::size_t executed = 0;
    for (const exp::JsonValue &point : resumed.find("points")->array) {
        if (point.find("attempts")->number == 0.0)
            ++replayed;
        else
            ++executed;
    }
    EXPECT_EQ(replayed, 8u);
    EXPECT_EQ(executed, 1u);

    // The queue log agrees: job 1 was started twice (the kill lost the
    // first) but finished exactly once.
    const std::string log = slurp(jobsLogPath(state.string()));
    EXPECT_EQ(countOccurrences(log, "\"ev\":\"started\",\"job\":\"1\""),
              2u);
    EXPECT_EQ(countOccurrences(log, "\"ev\":\"finished\",\"job\":\"1\""),
              1u);
    EXPECT_EQ(countOccurrences(log, "\"ev\":\"started\",\"job\":\"2\""),
              1u);

    ASSERT_EQ(::kill(second, SIGTERM), 0);
    EXPECT_EQ(waitDriver(second), 0);
    fs::remove_all(ref_dir);
    fs::remove_all(state);
}

TEST(ServeDaemon, SigtermDrainExitsZeroAndLeavesJobResumable)
{
    const auto state = freshDir("drain");
    const pid_t first =
        spawnDriver({"serve", state.string(), "--workers", "2"},
                    {"PADC_FAULT_INJECT=hang:9",
                     "PADC_WORKER_TIMEOUT_MS=600000"},
                    (state / "daemon1.log").string());
    ASSERT_GT(first, 0);
    ASSERT_TRUE(awaitDaemon(state.string()));
    ASSERT_TRUE(submitJobs(state.string(), {"smoke_grid"}).ok);

    const std::string journal =
        (state / "jobs" / "1" / "sweep.padcjournal").string();
    ASSERT_TRUE(awaitJournalLines(journal, 8));

    // Graceful drain: the daemon kills the wedged worker rather than
    // waiting out its timeout, journals what completed, and exits 0 --
    // this is the clean-shutdown half of the kill matrix.
    ASSERT_EQ(::kill(first, SIGTERM), 0);
    EXPECT_EQ(waitDriver(first), 0);
    const std::string log1 = slurp(state / "daemon1.log");
    EXPECT_NE(log1.find("1 job(s) left resumable"), std::string::npos);
    EXPECT_FALSE(fs::exists(socketPath(state.string())));
    EXPECT_FALSE(fs::exists(lockPath(state.string())));

    // No terminal record: the absent `finished` IS the resumable mark.
    const std::string queue_log = slurp(jobsLogPath(state.string()));
    EXPECT_EQ(
        countOccurrences(queue_log, "\"ev\":\"started\",\"job\":\"1\""),
        1u);
    EXPECT_EQ(
        countOccurrences(queue_log, "\"ev\":\"finished\",\"job\":\"1\""),
        0u);

    const pid_t second =
        spawnDriver({"serve", state.string(), "--workers", "2"}, {},
                    (state / "daemon2.log").string());
    ASSERT_GT(second, 0);
    ASSERT_TRUE(awaitDaemon(state.string()));
    std::string error;
    const auto done = awaitJobs(state.string(), {1}, 120'000, 50, &error);
    ASSERT_TRUE(done.has_value()) << error;
    EXPECT_EQ((*done)[0].state, kJobDone);

    const exp::JsonValue resumed =
        loadBench(state / "jobs" / "1", "BENCH_smoke_grid.json");
    std::size_t replayed = 0;
    for (const exp::JsonValue &point : resumed.find("points")->array)
        replayed += point.find("attempts")->number == 0.0 ? 1 : 0;
    EXPECT_EQ(replayed, 8u);

    ASSERT_EQ(::kill(second, SIGTERM), 0);
    EXPECT_EQ(waitDriver(second), 0);
    fs::remove_all(state);
}

TEST(ServeDaemon, TestKillHookDiesDeterministicallyAfterTerminalRecord)
{
    const auto state = freshDir("killhook");
    // PADC_SERVE_TEST_KILL_AFTER=1: SIGKILL ourselves right after the
    // first terminal record lands -- a deterministic stand-in for the
    // "daemon dies between two jobs" window the timing-based tests
    // cannot pin down.
    const pid_t first =
        spawnDriver({"serve", state.string(), "--workers", "0"},
                    {"PADC_SERVE_TEST_KILL_AFTER=1"},
                    (state / "daemon1.log").string());
    ASSERT_GT(first, 0);
    ASSERT_TRUE(awaitDaemon(state.string()));
    ASSERT_TRUE(submitJobs(state.string(), {"smoke", "smoke_grid"}).ok);
    EXPECT_EQ(waitDriver(first), 128 + SIGKILL);

    const std::string after_kill = slurp(jobsLogPath(state.string()));
    EXPECT_EQ(
        countOccurrences(after_kill, "\"ev\":\"finished\",\"job\":\"1\""),
        1u);

    const pid_t second =
        spawnDriver({"serve", state.string(), "--workers", "0"}, {},
                    (state / "daemon2.log").string());
    ASSERT_GT(second, 0);
    ASSERT_TRUE(awaitDaemon(state.string()));
    std::string error;
    const auto done =
        awaitJobs(state.string(), {1, 2}, 120'000, 50, &error);
    ASSERT_TRUE(done.has_value()) << error;
    // Job 1 finished before the kill and must NOT re-run; job 2 runs.
    EXPECT_EQ((*done)[0].state, kJobDone);
    EXPECT_EQ((*done)[0].attempts, 1u);
    EXPECT_EQ((*done)[1].state, kJobDone);

    const std::string log = slurp(jobsLogPath(state.string()));
    EXPECT_EQ(countOccurrences(log, "\"ev\":\"started\",\"job\":\"1\""),
              1u);

    ASSERT_EQ(::kill(second, SIGTERM), 0);
    EXPECT_EQ(waitDriver(second), 0);
    fs::remove_all(state);
}

TEST(ServeDaemon, SecondDaemonOnLiveStateDirIsRefused)
{
    const auto state = freshDir("second");
    const pid_t daemon =
        spawnDriver({"serve", state.string(), "--workers", "0"}, {},
                    (state / "daemon.log").string());
    ASSERT_GT(daemon, 0);
    ASSERT_TRUE(awaitDaemon(state.string()));

    EXPECT_EQ(runDriver({"serve", state.string(), "--workers", "0"}, {},
                        (state / "second.log").string()),
              2);
    EXPECT_NE(slurp(state / "second.log").find("live daemon"),
              std::string::npos);

    // The loser must not have damaged the winner.
    EXPECT_TRUE(awaitDaemon(state.string()));
    ASSERT_EQ(::kill(daemon, SIGTERM), 0);
    EXPECT_EQ(waitDriver(daemon), 0);
    fs::remove_all(state);
}

TEST(ServeDaemon, StaleLockAndSocketAreReclaimed)
{
    const auto state = freshDir("stale");

    // Manufacture the post-SIGKILL debris: a lock naming a pid that is
    // certainly dead (a reaped child of ours) and a leftover socket.
    const pid_t dead =
        spawnDriver({"help"}, {}, (state / "help.log").string());
    ASSERT_GT(dead, 0);
    EXPECT_EQ(waitDriver(dead), 0);
    ASSERT_FALSE(pidAlive(dead));
    {
        std::ofstream lock(lockPath(state.string()));
        lock << dead << "\n";
    }
    { std::ofstream sock(socketPath(state.string())); }

    const pid_t daemon =
        spawnDriver({"serve", state.string(), "--workers", "0"}, {},
                    (state / "daemon.log").string());
    ASSERT_GT(daemon, 0);
    ASSERT_TRUE(awaitDaemon(state.string()));
    EXPECT_NE(slurp(state / "daemon.log").find("reclaiming stale lock"),
              std::string::npos);

    ASSERT_EQ(::kill(daemon, SIGTERM), 0);
    EXPECT_EQ(waitDriver(daemon), 0);
    fs::remove_all(state);
}

TEST(ServeDaemon, CancelStopsPendingAndRunningJobs)
{
    const auto state = freshDir("cancel");
    const pid_t daemon =
        spawnDriver({"serve", state.string(), "--workers", "2"},
                    {"PADC_FAULT_INJECT=hang:9",
                     "PADC_WORKER_TIMEOUT_MS=600000"},
                    (state / "daemon.log").string());
    ASSERT_GT(daemon, 0);
    ASSERT_TRUE(awaitDaemon(state.string()));
    ASSERT_TRUE(submitJobs(state.string(), {"smoke_grid", "smoke"}).ok);

    // Job 1 wedges on its ninth point; job 2 sits pending behind it.
    const std::string journal =
        (state / "jobs" / "1" / "sweep.padcjournal").string();
    ASSERT_TRUE(awaitJournalLines(journal, 8));

    // Cancel the pending job through the CLI: immediate.
    ASSERT_EQ(runDriver({"cancel", state.string(), "2"}, {},
                        (state / "cancel2.log").string()),
              0);
    std::string error;
    auto done = awaitJobs(state.string(), {2}, 60'000, 50, &error);
    ASSERT_TRUE(done.has_value()) << error;
    EXPECT_EQ((*done)[0].state, kJobCancelled);

    // Cancel the running job: the daemon interrupts the sweep (killing
    // the wedged worker) and appends the cancelled record after drain.
    ServeRequest request;
    request.op = ServeRequest::Op::Cancel;
    request.job_id = 1;
    ServeResponse response;
    ASSERT_TRUE(
        requestOnce(state.string(), request, &response, &error))
        << error;
    EXPECT_TRUE(response.ok);
    done = awaitJobs(state.string(), {1}, 120'000, 50, &error);
    ASSERT_TRUE(done.has_value()) << error;
    EXPECT_EQ((*done)[0].state, kJobCancelled);

    // Cancelling a terminal job is a clean rejection...
    ASSERT_TRUE(
        requestOnce(state.string(), request, &response, &error))
        << error;
    EXPECT_FALSE(response.ok);
    ASSERT_EQ(response.errors.size(), 1u);
    EXPECT_NE(response.errors[0].find("already cancelled"),
              std::string::npos);
    // ...and so is an unknown id.
    EXPECT_EQ(runDriver({"cancel", state.string(), "99"}, {},
                        (state / "cancel99.log").string()),
              1);
    EXPECT_NE(slurp(state / "cancel99.log").find("unknown job '99'"),
              std::string::npos);

    // The daemon must be fully healthy after the interrupt drain: a
    // fresh job runs to completion on the respawned pool.
    ASSERT_EQ(runDriver({"submit", state.string(), "smoke", "--wait"},
                        {}, (state / "submit3.log").string()),
              0);

    ASSERT_EQ(::kill(daemon, SIGTERM), 0);
    EXPECT_EQ(waitDriver(daemon), 0);
    fs::remove_all(state);
}

TEST(ServeDaemon, AdmissionAccumulatesErrorsAndBoundsTheQueue)
{
    const auto state = freshDir("admit");
    const pid_t daemon = spawnDriver({"serve", state.string(),
                                      "--workers", "0", "--queue-cap",
                                      "2"},
                                     {},
                                     (state / "daemon.log").string());
    ASSERT_GT(daemon, 0);
    ASSERT_TRUE(awaitDaemon(state.string()));

    // Every problem in the batch is reported in one round trip, with
    // did-you-mean suggestions, and nothing is admitted.
    const ServeResponse rejected =
        submitJobs(state.string(), {"smoke_grd", "no_such_exp"});
    EXPECT_FALSE(rejected.ok);
    ASSERT_EQ(rejected.errors.size(), 2u);
    EXPECT_NE(rejected.errors[0].find("unknown experiment 'smoke_grd'"),
              std::string::npos);
    EXPECT_NE(rejected.errors[0].find("did you mean 'smoke_grid'?"),
              std::string::npos);
    EXPECT_TRUE(rejected.job_ids.empty());

    // Same through the CLI: exit 2 and the errors on stderr.
    EXPECT_EQ(runDriver({"submit", state.string(), "smoke_grd"}, {},
                        (state / "submit_bad.log").string()),
              2);
    EXPECT_NE(slurp(state / "submit_bad.log").find("did you mean"),
              std::string::npos);

    // Backpressure rejects the WHOLE batch (no partial admission).
    const ServeResponse full = submitJobs(
        state.string(), {"smoke", "smoke_grid", "fig01"});
    EXPECT_FALSE(full.ok);
    bool saw_full = false;
    for (const std::string &error : full.errors)
        saw_full = saw_full ||
                   error.find("queue is full (0 pending, cap 2, "
                              "batch of 3)") != std::string::npos;
    EXPECT_TRUE(saw_full) << "errors: "
                          << (full.errors.empty() ? "" : full.errors[0]);
    EXPECT_TRUE(listJobs(state.string()).empty());

    // Within the cap, jobs flow normally.
    EXPECT_EQ(runDriver({"submit", state.string(), "smoke", "--wait"},
                        {}, (state / "submit_ok.log").string()),
              0);

    ASSERT_EQ(::kill(daemon, SIGTERM), 0);
    EXPECT_EQ(waitDriver(daemon), 0);
    fs::remove_all(state);
}

TEST(ServeDaemon, ClientDiagnosticsWithoutADaemonAreHelpful)
{
    const auto dir = freshDir("nodaemon");
    EXPECT_EQ(runDriver({"jobs", dir.string()}, {},
                        (dir / "jobs.log").string()),
              2);
    EXPECT_NE(
        slurp(dir / "jobs.log").find("daemon running"),
        std::string::npos);

    // The status satellite: a dir nothing ever ran in explains itself
    // instead of dumping a raw open(2) failure.
    EXPECT_EQ(runDriver({"status", dir.string()}, {},
                        (dir / "status.log").string()),
              1);
    EXPECT_NE(slurp(dir / "status.log").find("no sweep has run here"),
              std::string::npos);
    EXPECT_EQ(runDriver({"status", dir.string(), "--json"}, {},
                        (dir / "status_json.log").string()),
              1);
    fs::remove_all(dir);
}

TEST(ServeDaemon, ConcurrentSubmitCancelClientsKeepTheQueueConsistent)
{
    const auto state = freshDir("races");
    const pid_t daemon =
        spawnDriver({"serve", state.string(), "--workers", "0"}, {},
                    (state / "daemon.log").string());
    ASSERT_GT(daemon, 0);
    ASSERT_TRUE(awaitDaemon(state.string()));

    constexpr std::size_t kSubmitters = 4;
    constexpr std::size_t kSubmitsEach = 3;
    std::mutex ids_mutex;
    std::vector<std::uint64_t> ids;
    std::vector<std::thread> threads;

    for (std::size_t t = 0; t < kSubmitters; ++t) {
        threads.emplace_back([&] {
            ServeClient client;
            ASSERT_TRUE(client.connect(state.string()))
                << client.error();
            for (std::size_t i = 0; i < kSubmitsEach; ++i) {
                ServeRequest request;
                request.op = ServeRequest::Op::Submit;
                request.selectors = {"smoke"};
                ServeResponse response;
                ASSERT_TRUE(client.request(request, &response))
                    << client.error();
                ASSERT_TRUE(response.ok);
                ASSERT_EQ(response.job_ids.size(), 1u);
                std::lock_guard<std::mutex> lock(ids_mutex);
                ids.push_back(response.job_ids[0]);
            }
        });
    }
    // Cancellers race the submitters and the executor over the same
    // ids; every outcome (cancelled, already running, already done,
    // not yet submitted) is legal -- only transport failures and
    // daemon corruption are not.
    for (std::size_t t = 0; t < 2; ++t) {
        threads.emplace_back([&, t] {
            ServeClient client;
            ASSERT_TRUE(client.connect(state.string()))
                << client.error();
            const std::size_t total = kSubmitters * kSubmitsEach;
            for (std::size_t i = 0; i < total; ++i) {
                ServeRequest request;
                request.op = ServeRequest::Op::Cancel;
                request.job_id = (t + i) % total + 1;
                ServeResponse response;
                ASSERT_TRUE(client.request(request, &response))
                    << client.error();
            }
        });
    }
    threads.emplace_back([&] {
        ServeClient client;
        ASSERT_TRUE(client.connect(state.string())) << client.error();
        for (std::size_t i = 0; i < 10; ++i) {
            ServeRequest request;
            request.op = ServeRequest::Op::Jobs;
            ServeResponse response;
            ASSERT_TRUE(client.request(request, &response))
                << client.error();
            ASSERT_TRUE(response.ok);
        }
    });
    for (std::thread &thread : threads)
        thread.join();

    // Every submit was admitted exactly once, with unique ids.
    ASSERT_EQ(ids.size(), kSubmitters * kSubmitsEach);
    const std::set<std::uint64_t> unique(ids.begin(), ids.end());
    EXPECT_EQ(unique.size(), ids.size());

    // And every job reaches a terminal state (done or cancelled).
    std::string error;
    const auto done = awaitJobs(state.string(), ids, 300'000, 50, &error);
    ASSERT_TRUE(done.has_value()) << error;
    for (const JobView &job : *done)
        EXPECT_TRUE(job.state == kJobDone || job.state == kJobCancelled)
            << job.id << ": " << job.state;
    EXPECT_EQ(listJobs(state.string()).size(), ids.size());

    ASSERT_EQ(::kill(daemon, SIGTERM), 0);
    EXPECT_EQ(waitDriver(daemon), 0);
    fs::remove_all(state);
}

} // namespace
} // namespace padc::serve
