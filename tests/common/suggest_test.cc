/**
 * @file
 * Unit tests for the shared "did you mean" machinery.
 */

#include <gtest/gtest.h>

#include "common/suggest.hh"

namespace padc
{
namespace
{

TEST(SuggestTest, EditDistanceBasics)
{
    EXPECT_EQ(editDistance("", ""), 0u);
    EXPECT_EQ(editDistance("abc", "abc"), 0u);
    EXPECT_EQ(editDistance("abc", ""), 3u);
    EXPECT_EQ(editDistance("", "abc"), 3u);
    EXPECT_EQ(editDistance("kitten", "sitting"), 3u);
    EXPECT_EQ(editDistance("flaw", "lawn"), 2u);
    EXPECT_EQ(editDistance("fig09", "fig These"), 6u);
}

TEST(SuggestTest, ClosestMatchPicksNearest)
{
    const std::vector<std::string> names = {"libquantum_06", "milc_06",
                                            "swim_00"};
    EXPECT_EQ(closestMatch("libquantm_06", names), "libquantum_06");
    EXPECT_EQ(closestMatch("milc06", names), "milc_06");
    EXPECT_EQ(closestMatch("swim", names), "swim_00");
}

TEST(SuggestTest, ClosestMatchEmptyCandidates)
{
    EXPECT_EQ(closestMatch("anything", {}), "");
}

TEST(SuggestTest, ClosestMatchFirstWinsTies)
{
    const std::vector<std::string> names = {"aaa", "aab"};
    EXPECT_EQ(closestMatch("aa", names), "aaa");
}

TEST(SuggestTest, DidYouMeanFormatting)
{
    const std::vector<std::string> names = {"fig09", "fig16"};
    EXPECT_EQ(didYouMean("fig9", names), " (did you mean 'fig09'?)");
    EXPECT_EQ(didYouMean("anything", {}), "");
}

} // namespace
} // namespace padc
