/**
 * @file
 * Unit tests for policy/prefetcher name conversions.
 */

#include <gtest/gtest.h>

#include "common/config.hh"
#include "common/types.hh"

namespace padc
{
namespace
{

TEST(ConfigTest, SchedPolicyNames)
{
    EXPECT_EQ(toString(SchedPolicyKind::FrFcfs), "demand-pref-equal");
    EXPECT_EQ(toString(SchedPolicyKind::DemandFirst), "demand-first");
    EXPECT_EQ(toString(SchedPolicyKind::PrefetchFirst), "prefetch-first");
    EXPECT_EQ(toString(SchedPolicyKind::Aps), "aps");
}

TEST(ConfigTest, ParseSchedPolicyRoundTrip)
{
    for (SchedPolicyKind kind :
         {SchedPolicyKind::FrFcfs, SchedPolicyKind::DemandFirst,
          SchedPolicyKind::PrefetchFirst, SchedPolicyKind::Aps}) {
        SchedPolicyKind parsed{};
        ASSERT_TRUE(parseSchedPolicy(toString(kind), &parsed));
        EXPECT_EQ(parsed, kind);
    }
}

TEST(ConfigTest, ParseSchedPolicyAliases)
{
    SchedPolicyKind kind{};
    EXPECT_TRUE(parseSchedPolicy("frfcfs", &kind));
    EXPECT_EQ(kind, SchedPolicyKind::FrFcfs);
    EXPECT_TRUE(parseSchedPolicy("demand-prefetch-equal", &kind));
    EXPECT_EQ(kind, SchedPolicyKind::FrFcfs);
    EXPECT_TRUE(parseSchedPolicy("padc", &kind));
    EXPECT_EQ(kind, SchedPolicyKind::Aps);
}

TEST(ConfigTest, ParseSchedPolicyRejectsUnknownAndPreservesOutput)
{
    SchedPolicyKind kind = SchedPolicyKind::DemandFirst;
    EXPECT_FALSE(parseSchedPolicy("bogus", &kind));
    EXPECT_EQ(kind, SchedPolicyKind::DemandFirst);
}

TEST(ConfigTest, PrefetcherNamesRoundTrip)
{
    for (PrefetcherKind kind :
         {PrefetcherKind::None, PrefetcherKind::Stream,
          PrefetcherKind::Stride, PrefetcherKind::Cdc,
          PrefetcherKind::Markov}) {
        PrefetcherKind parsed{};
        ASSERT_TRUE(parsePrefetcher(toString(kind), &parsed));
        EXPECT_EQ(parsed, kind);
    }
    PrefetcherKind parsed{};
    EXPECT_FALSE(parsePrefetcher("quantum", &parsed));
}

TEST(ConfigTest, RequestClassNames)
{
    EXPECT_EQ(toString(RequestClass::DemandRead), "demand-read");
    EXPECT_EQ(toString(RequestClass::Prefetch), "prefetch");
    EXPECT_EQ(toString(RequestClass::Writeback), "writeback");
    EXPECT_EQ(toString(RequestClass::PtwRead), "ptw-read");
    EXPECT_EQ(toString(RequestClass::DramCacheFill), "dram-cache-fill");
}

TEST(ConfigTest, RequestClassRoundTrip)
{
    for (std::size_t c = 0; c < kRequestClassCount; ++c) {
        const auto cls = static_cast<RequestClass>(c);
        RequestClass parsed{};
        ASSERT_TRUE(parseRequestClass(toString(cls), &parsed));
        EXPECT_EQ(parsed, cls);
    }
    // The "demand" alias maps to the canonical DemandRead.
    RequestClass parsed{};
    EXPECT_TRUE(parseRequestClass("demand", &parsed));
    EXPECT_EQ(parsed, RequestClass::DemandRead);
    parsed = RequestClass::Writeback;
    EXPECT_FALSE(parseRequestClass("speculative-store", &parsed));
    EXPECT_EQ(parsed, RequestClass::Writeback);
}

/**
 * The enumerator values are a wire and stat-index contract (request
 * pools, telemetry events, per-class counter arrays): append-only,
 * never renumbered.
 */
TEST(ConfigTest, RequestClassValuesAreStable)
{
    EXPECT_EQ(static_cast<std::size_t>(RequestClass::DemandRead), 0u);
    EXPECT_EQ(static_cast<std::size_t>(RequestClass::Prefetch), 1u);
    EXPECT_EQ(static_cast<std::size_t>(RequestClass::Writeback), 2u);
    EXPECT_EQ(static_cast<std::size_t>(RequestClass::PtwRead), 3u);
    EXPECT_EQ(static_cast<std::size_t>(RequestClass::DramCacheFill), 4u);
    EXPECT_EQ(kRequestClassCount, 5u);
}

TEST(ConfigTest, RowPolicyNames)
{
    EXPECT_EQ(toString(RowPolicy::Open), "open-row");
    EXPECT_EQ(toString(RowPolicy::Closed), "closed-row");
}

TEST(ConfigTest, RowPolicyRoundTrip)
{
    for (RowPolicy policy : {RowPolicy::Open, RowPolicy::Closed}) {
        RowPolicy parsed{};
        ASSERT_TRUE(parseRowPolicy(toString(policy), &parsed));
        EXPECT_EQ(parsed, policy);
    }
    RowPolicy parsed = RowPolicy::Closed;
    EXPECT_FALSE(parseRowPolicy("ajar-row", &parsed));
    EXPECT_EQ(parsed, RowPolicy::Closed);
}

// The name tables are the single source of truth for both directions:
// every enumerator must render to a parseable canonical name, and no
// enumerator may render as "unknown".
TEST(ConfigTest, EveryEnumValueRoundTrips)
{
    for (SchedPolicyKind kind :
         {SchedPolicyKind::FrFcfs, SchedPolicyKind::DemandFirst,
          SchedPolicyKind::PrefetchFirst, SchedPolicyKind::Aps}) {
        ASSERT_NE(toString(kind), "unknown");
        SchedPolicyKind parsed{};
        ASSERT_TRUE(parseSchedPolicy(toString(kind), &parsed));
        EXPECT_EQ(parsed, kind);
    }
    for (PrefetcherKind kind :
         {PrefetcherKind::None, PrefetcherKind::Stream,
          PrefetcherKind::Stride, PrefetcherKind::Cdc,
          PrefetcherKind::Markov}) {
        ASSERT_NE(toString(kind), "unknown");
        PrefetcherKind parsed{};
        ASSERT_TRUE(parsePrefetcher(toString(kind), &parsed));
        EXPECT_EQ(parsed, kind);
    }
    for (RowPolicy policy : {RowPolicy::Open, RowPolicy::Closed}) {
        ASSERT_NE(toString(policy), "unknown");
        RowPolicy parsed{};
        ASSERT_TRUE(parseRowPolicy(toString(policy), &parsed));
        EXPECT_EQ(parsed, policy);
    }
    for (std::size_t c = 0; c < kRequestClassCount; ++c) {
        const auto cls = static_cast<RequestClass>(c);
        ASSERT_NE(toString(cls), "unknown");
        RequestClass parsed{};
        ASSERT_TRUE(parseRequestClass(toString(cls), &parsed));
        EXPECT_EQ(parsed, cls);
    }
}

TEST(TypesTest, LineHelpers)
{
    EXPECT_EQ(lineAlign(0x1234), 0x1200u);
    EXPECT_EQ(lineAlign(0x1240), 0x1240u);
    EXPECT_EQ(lineIndex(0x1240), 0x49u);
    EXPECT_EQ(lineToAddr(0x49), 0x1240u);
    EXPECT_EQ(lineToAddr(lineIndex(0xABCDE0)), lineAlign(0xABCDE0));
}

} // namespace
} // namespace padc
