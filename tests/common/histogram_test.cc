/**
 * @file
 * Unit tests for the shared fixed-bucket Histogram
 * (common/histogram.hh), moved out of stats_test.cc when the class
 * was promoted for reuse by the obs metrics registry. The nearest-rank
 * percentile and overflow-to-tracked-max semantics pinned down here
 * are load-bearing for both the Fig. 4(a) distributions and the
 * obs::AtomicHistogram snapshots.
 */

#include <gtest/gtest.h>

#include "common/histogram.hh"

namespace padc
{
namespace
{

TEST(HistogramTest, BucketPlacement)
{
    Histogram h(100, 4); // [0,100) [100,200) [200,300) [300,400) + overflow
    h.sample(0);
    h.sample(99);
    h.sample(100);
    h.sample(399);
    h.sample(400); // overflow
    h.sample(100000);
    EXPECT_EQ(h.count(0), 2u);
    EXPECT_EQ(h.count(1), 1u);
    EXPECT_EQ(h.count(2), 0u);
    EXPECT_EQ(h.count(3), 1u);
    EXPECT_EQ(h.count(4), 2u); // overflow bucket
    EXPECT_EQ(h.total(), 6u);
}

TEST(HistogramTest, MeanAndReset)
{
    Histogram h(10, 2);
    h.sample(10);
    h.sample(30);
    EXPECT_DOUBLE_EQ(h.mean(), 20.0);
    h.reset();
    EXPECT_EQ(h.total(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.count(0), 0u);
}

TEST(HistogramTest, OutOfRangeBucketQueryIsZero)
{
    Histogram h(10, 2);
    h.sample(5);
    EXPECT_EQ(h.count(99), 0u);
}

TEST(HistogramTest, PercentileEmptyIsZero)
{
    Histogram h(10, 4);
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(50.0), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(100.0), 0.0);
    EXPECT_EQ(h.max(), 0u);
}

TEST(HistogramTest, PercentileExactBucketBoundaries)
{
    // 10 samples, one per bucket of width 10: nearest-rank percentiles
    // land exactly on bucket upper edges.
    Histogram h(10, 10);
    for (std::uint64_t i = 0; i < 10; ++i)
        h.sample(i * 10 + 5); // one sample in bucket i
    // p10 -> rank 1 -> first bucket's upper edge.
    EXPECT_DOUBLE_EQ(h.percentile(10.0), 10.0);
    // p50 -> rank 5 -> fifth bucket's upper edge.
    EXPECT_DOUBLE_EQ(h.percentile(50.0), 50.0);
    // p51 -> rank 6 -> sixth bucket.
    EXPECT_DOUBLE_EQ(h.percentile(51.0), 60.0);
    EXPECT_DOUBLE_EQ(h.percentile(100.0), 100.0);
    // p0 clamps to rank 1, and out-of-range p clamps to [0, 100].
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 10.0);
    EXPECT_DOUBLE_EQ(h.percentile(-5.0), 10.0);
    EXPECT_DOUBLE_EQ(h.percentile(200.0), 100.0);
}

TEST(HistogramTest, PercentileOverflowBucketReturnsMax)
{
    Histogram h(10, 2); // [0,10) [10,20) + overflow
    h.sample(5);
    h.sample(15);
    h.sample(1000);
    h.sample(5000); // overflow holds ranks 3..4
    EXPECT_EQ(h.max(), 5000u);
    EXPECT_DOUBLE_EQ(h.percentile(25.0), 10.0);
    EXPECT_DOUBLE_EQ(h.percentile(50.0), 20.0);
    // Ranks inside the overflow bucket report the tracked maximum.
    EXPECT_DOUBLE_EQ(h.percentile(75.0), 5000.0);
    EXPECT_DOUBLE_EQ(h.percentile(100.0), 5000.0);
    h.reset();
    EXPECT_EQ(h.max(), 0u);
    EXPECT_DOUBLE_EQ(h.percentile(100.0), 0.0);
}

TEST(HistogramTest, ToStatSetExportsSummaryAndBuckets)
{
    Histogram h(100, 3); // [0,100) [100,200) [200,300) + overflow
    h.sample(50);
    h.sample(150);
    h.sample(150);
    h.sample(900);
    const StatSet stats = h.toStatSet("svc");
    EXPECT_DOUBLE_EQ(stats.get("svc.count"), 4.0);
    EXPECT_DOUBLE_EQ(stats.get("svc.mean"), (50 + 150 + 150 + 900) / 4.0);
    EXPECT_DOUBLE_EQ(stats.get("svc.p50"), 200.0);
    EXPECT_DOUBLE_EQ(stats.get("svc.max"), 900.0);
    EXPECT_DOUBLE_EQ(stats.get("svc.le_100"), 1.0);
    EXPECT_DOUBLE_EQ(stats.get("svc.le_200"), 2.0);
    EXPECT_DOUBLE_EQ(stats.get("svc.le_300"), 0.0);
    EXPECT_DOUBLE_EQ(stats.get("svc.overflow"), 1.0);
    // Exactly count/mean/p50/p90/p99/max + 3 buckets + overflow.
    EXPECT_EQ(stats.entries().size(), 10u);
}

// fromCounts() is the obs::AtomicHistogram snapshot path: rebuilding
// from raw bucket counts must behave exactly like sampling directly.
TEST(HistogramTest, FromCountsMatchesSampledHistogram)
{
    Histogram sampled(10, 2);
    sampled.sample(5);
    sampled.sample(15);
    sampled.sample(1000);
    sampled.sample(5000);

    const Histogram rebuilt = Histogram::fromCounts(
        10, {1, 1, 2}, 5.0 + 15.0 + 1000.0 + 5000.0, 5000);
    EXPECT_EQ(rebuilt.total(), sampled.total());
    EXPECT_EQ(rebuilt.max(), sampled.max());
    EXPECT_DOUBLE_EQ(rebuilt.mean(), sampled.mean());
    EXPECT_DOUBLE_EQ(rebuilt.percentile(50.0), sampled.percentile(50.0));
    EXPECT_DOUBLE_EQ(rebuilt.percentile(75.0), sampled.percentile(75.0));
    EXPECT_DOUBLE_EQ(rebuilt.percentile(100.0), sampled.percentile(100.0));
    for (std::uint32_t i = 0; i <= 2; ++i)
        EXPECT_EQ(rebuilt.count(i), sampled.count(i)) << "bucket " << i;
}

TEST(HistogramTest, FromCountsEmptyIsEmpty)
{
    const Histogram h = Histogram::fromCounts(10, {0, 0, 0}, 0.0, 0);
    EXPECT_EQ(h.total(), 0u);
    EXPECT_DOUBLE_EQ(h.percentile(50.0), 0.0);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

} // namespace
} // namespace padc
