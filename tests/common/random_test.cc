/**
 * @file
 * Unit and property tests for the deterministic PRNG.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/random.hh"

namespace padc
{
namespace
{

TEST(RngTest, DeterministicForSameSeed)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next())
            ++equal;
    }
    EXPECT_LT(equal, 3);
}

TEST(RngTest, ZeroSeedIsValid)
{
    Rng rng(0);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 64; ++i)
        seen.insert(rng.next());
    // A broken all-zero state would return the same value forever.
    EXPECT_GT(seen.size(), 60u);
}

TEST(RngTest, NextBelowRespectsBound)
{
    Rng rng(7);
    for (std::uint64_t bound : {1ULL, 2ULL, 10ULL, 1000ULL, 1ULL << 40}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.nextBelow(bound), bound);
    }
}

TEST(RngTest, NextBelowZeroBoundReturnsZero)
{
    Rng rng(7);
    EXPECT_EQ(rng.nextBelow(0), 0u);
}

TEST(RngTest, NextRangeInclusive)
{
    Rng rng(9);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const std::int64_t v = rng.nextRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo = saw_lo || v == -3;
        saw_hi = saw_hi || v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextRangeSingleton)
{
    Rng rng(3);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(rng.nextRange(5, 5), 5);
}

TEST(RngTest, NextDoubleInUnitInterval)
{
    Rng rng(11);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double d = rng.nextDouble();
        ASSERT_GE(d, 0.0);
        ASSERT_LT(d, 1.0);
        sum += d;
    }
    // Mean of uniform(0,1) should be near 0.5.
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, ChanceExtremes)
{
    Rng rng(13);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
        EXPECT_FALSE(rng.chance(-1.0));
        EXPECT_TRUE(rng.chance(2.0));
    }
}

TEST(RngTest, ChanceFrequencyMatchesProbability)
{
    Rng rng(17);
    int hits = 0;
    const int trials = 20000;
    for (int i = 0; i < trials; ++i)
        hits += rng.chance(0.25) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / trials, 0.25, 0.02);
}

TEST(RngTest, BurstLengthBounds)
{
    Rng rng(19);
    for (int i = 0; i < 1000; ++i) {
        const std::uint32_t len = rng.burstLength(0.5, 8);
        EXPECT_GE(len, 1u);
        EXPECT_LE(len, 8u);
    }
}

TEST(RngTest, BurstLengthMeanApproxGeometric)
{
    Rng rng(23);
    double sum = 0.0;
    const int trials = 20000;
    for (int i = 0; i < trials; ++i)
        sum += rng.burstLength(0.5, 1000);
    // Mean of 1 + Geom(p=0.5 continuation) = 2.
    EXPECT_NEAR(sum / trials, 2.0, 0.1);
}

TEST(RngTest, BurstLengthZeroProbabilityIsOne)
{
    Rng rng(29);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.burstLength(0.0, 100), 1u);
}

TEST(RngTest, ForkIsIndependentAndDeterministic)
{
    Rng a(31);
    Rng b(31);
    Rng fa = a.fork();
    Rng fb = b.fork();
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(fa.next(), fb.next());
    // Parent and child streams should differ.
    Rng c(31);
    Rng fc = c.fork();
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        if (fc.next() == c.next())
            ++equal;
    }
    EXPECT_LT(equal, 3);
}

/** Property sweep: nextBelow stays in range for many bounds and seeds. */
class RngBoundProperty
    : public ::testing::TestWithParam<std::tuple<std::uint64_t,
                                                 std::uint64_t>>
{
};

TEST_P(RngBoundProperty, AlwaysBelowBound)
{
    const auto [seed, bound] = GetParam();
    Rng rng(seed);
    for (int i = 0; i < 500; ++i)
        ASSERT_LT(rng.nextBelow(bound), bound);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RngBoundProperty,
    ::testing::Combine(::testing::Values(0ULL, 1ULL, 0xDEADBEEFULL),
                       ::testing::Values(1ULL, 3ULL, 64ULL, 4097ULL,
                                         1ULL << 33)));

} // namespace
} // namespace padc
