/**
 * @file
 * Unit tests for StatSet, Histogram, and the small math helpers.
 */

#include <gtest/gtest.h>

#include "common/stats.hh"

namespace padc
{
namespace
{

TEST(StatSetTest, AddAndGet)
{
    StatSet s;
    s.add("alpha", 1.5);
    s.add("beta", -2.0);
    EXPECT_TRUE(s.has("alpha"));
    EXPECT_DOUBLE_EQ(s.get("alpha"), 1.5);
    EXPECT_DOUBLE_EQ(s.get("beta"), -2.0);
}

TEST(StatSetTest, MissingReadsAsZero)
{
    StatSet s;
    EXPECT_FALSE(s.has("nope"));
    EXPECT_DOUBLE_EQ(s.get("nope"), 0.0);
}

// Lookups go through the lazy name index; a duplicate name must keep
// reading as its first occurrence, exactly like the original
// front-to-back linear scan.
TEST(StatSetTest, DuplicateNameReadsFirstOccurrence)
{
    StatSet s;
    s.add("dup", 1.0);
    s.add("other", 5.0);
    s.add("dup", 2.0);
    EXPECT_TRUE(s.has("dup"));
    EXPECT_DOUBLE_EQ(s.get("dup"), 1.0);
    ASSERT_EQ(s.entries().size(), 3u);
    EXPECT_DOUBLE_EQ(s.entries()[2].second, 2.0); // both kept in order
}

// Appends after a lookup must be visible to later lookups (the index
// catches up lazily instead of being rebuilt per add).
TEST(StatSetTest, IndexCatchesUpAfterInterleavedAdds)
{
    StatSet s;
    s.add("a", 1.0);
    EXPECT_DOUBLE_EQ(s.get("a"), 1.0); // builds index over {a}
    EXPECT_FALSE(s.has("b"));
    s.add("b", 2.0);
    s.add("a", 9.0); // duplicate appended after the index was built
    EXPECT_TRUE(s.has("b"));
    EXPECT_DOUBLE_EQ(s.get("b"), 2.0);
    EXPECT_DOUBLE_EQ(s.get("a"), 1.0); // still the first occurrence

    StatSet merged;
    merged.add("x", 3.0);
    EXPECT_TRUE(merged.has("x"));
    merged.merge("pre.", s);
    EXPECT_DOUBLE_EQ(merged.get("pre.b"), 2.0);
    EXPECT_DOUBLE_EQ(merged.get("pre.a"), 1.0);
}

TEST(StatSetTest, InsertionOrderPreserved)
{
    StatSet s;
    s.add("z", 1);
    s.add("a", 2);
    s.add("m", 3);
    ASSERT_EQ(s.entries().size(), 3u);
    EXPECT_EQ(s.entries()[0].first, "z");
    EXPECT_EQ(s.entries()[1].first, "a");
    EXPECT_EQ(s.entries()[2].first, "m");
}

TEST(StatSetTest, MergePrefixesNames)
{
    StatSet inner;
    inner.add("x", 7);
    StatSet outer;
    outer.add("y", 1);
    outer.merge("core0.", inner);
    EXPECT_DOUBLE_EQ(outer.get("core0.x"), 7.0);
    EXPECT_EQ(outer.entries().size(), 2u);
}

TEST(StatSetTest, ToStringContainsEntries)
{
    StatSet s;
    s.add("ipc", 2.5);
    const std::string text = s.toString();
    EXPECT_NE(text.find("ipc"), std::string::npos);
    EXPECT_NE(text.find("2.5"), std::string::npos);
}

TEST(HistogramTest, BucketPlacement)
{
    Histogram h(100, 4); // [0,100) [100,200) [200,300) [300,400) + overflow
    h.sample(0);
    h.sample(99);
    h.sample(100);
    h.sample(399);
    h.sample(400); // overflow
    h.sample(100000);
    EXPECT_EQ(h.count(0), 2u);
    EXPECT_EQ(h.count(1), 1u);
    EXPECT_EQ(h.count(2), 0u);
    EXPECT_EQ(h.count(3), 1u);
    EXPECT_EQ(h.count(4), 2u); // overflow bucket
    EXPECT_EQ(h.total(), 6u);
}

TEST(HistogramTest, MeanAndReset)
{
    Histogram h(10, 2);
    h.sample(10);
    h.sample(30);
    EXPECT_DOUBLE_EQ(h.mean(), 20.0);
    h.reset();
    EXPECT_EQ(h.total(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.count(0), 0u);
}

TEST(HistogramTest, OutOfRangeBucketQueryIsZero)
{
    Histogram h(10, 2);
    h.sample(5);
    EXPECT_EQ(h.count(99), 0u);
}

TEST(HistogramTest, PercentileEmptyIsZero)
{
    Histogram h(10, 4);
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(50.0), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(100.0), 0.0);
    EXPECT_EQ(h.max(), 0u);
}

TEST(HistogramTest, PercentileExactBucketBoundaries)
{
    // 10 samples, one per bucket of width 10: nearest-rank percentiles
    // land exactly on bucket upper edges.
    Histogram h(10, 10);
    for (std::uint64_t i = 0; i < 10; ++i)
        h.sample(i * 10 + 5); // one sample in bucket i
    // p10 -> rank 1 -> first bucket's upper edge.
    EXPECT_DOUBLE_EQ(h.percentile(10.0), 10.0);
    // p50 -> rank 5 -> fifth bucket's upper edge.
    EXPECT_DOUBLE_EQ(h.percentile(50.0), 50.0);
    // p51 -> rank 6 -> sixth bucket.
    EXPECT_DOUBLE_EQ(h.percentile(51.0), 60.0);
    EXPECT_DOUBLE_EQ(h.percentile(100.0), 100.0);
    // p0 clamps to rank 1, and out-of-range p clamps to [0, 100].
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 10.0);
    EXPECT_DOUBLE_EQ(h.percentile(-5.0), 10.0);
    EXPECT_DOUBLE_EQ(h.percentile(200.0), 100.0);
}

TEST(HistogramTest, PercentileOverflowBucketReturnsMax)
{
    Histogram h(10, 2); // [0,10) [10,20) + overflow
    h.sample(5);
    h.sample(15);
    h.sample(1000);
    h.sample(5000); // overflow holds ranks 3..4
    EXPECT_EQ(h.max(), 5000u);
    EXPECT_DOUBLE_EQ(h.percentile(25.0), 10.0);
    EXPECT_DOUBLE_EQ(h.percentile(50.0), 20.0);
    // Ranks inside the overflow bucket report the tracked maximum.
    EXPECT_DOUBLE_EQ(h.percentile(75.0), 5000.0);
    EXPECT_DOUBLE_EQ(h.percentile(100.0), 5000.0);
    h.reset();
    EXPECT_EQ(h.max(), 0u);
    EXPECT_DOUBLE_EQ(h.percentile(100.0), 0.0);
}

TEST(HistogramTest, ToStatSetExportsSummaryAndBuckets)
{
    Histogram h(100, 3); // [0,100) [100,200) [200,300) + overflow
    h.sample(50);
    h.sample(150);
    h.sample(150);
    h.sample(900);
    const StatSet stats = h.toStatSet("svc");
    EXPECT_DOUBLE_EQ(stats.get("svc.count"), 4.0);
    EXPECT_DOUBLE_EQ(stats.get("svc.mean"), (50 + 150 + 150 + 900) / 4.0);
    EXPECT_DOUBLE_EQ(stats.get("svc.p50"), 200.0);
    EXPECT_DOUBLE_EQ(stats.get("svc.max"), 900.0);
    EXPECT_DOUBLE_EQ(stats.get("svc.le_100"), 1.0);
    EXPECT_DOUBLE_EQ(stats.get("svc.le_200"), 2.0);
    EXPECT_DOUBLE_EQ(stats.get("svc.le_300"), 0.0);
    EXPECT_DOUBLE_EQ(stats.get("svc.overflow"), 1.0);
    // Exactly count/mean/p50/p90/p99/max + 3 buckets + overflow.
    EXPECT_EQ(stats.entries().size(), 10u);
}

TEST(MathTest, Geomean)
{
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
    EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-12);
    EXPECT_NEAR(geomean({1.0, 1.0, 1.0}), 1.0, 1e-12);
}

TEST(MathTest, Amean)
{
    EXPECT_DOUBLE_EQ(amean({}), 0.0);
    EXPECT_DOUBLE_EQ(amean({1.0, 2.0, 3.0}), 2.0);
}

TEST(MathTest, RatioHandlesZeroDenominator)
{
    EXPECT_DOUBLE_EQ(ratio(5.0, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(ratio(6.0, 3.0), 2.0);
}

} // namespace
} // namespace padc
