/**
 * @file
 * Unit tests for StatSet and the small math helpers. Histogram
 * tests moved to histogram_test.cc with the class promotion to
 * common/histogram.hh.
 */

#include <gtest/gtest.h>

#include "common/stats.hh"

namespace padc
{
namespace
{

TEST(StatSetTest, AddAndGet)
{
    StatSet s;
    s.add("alpha", 1.5);
    s.add("beta", -2.0);
    EXPECT_TRUE(s.has("alpha"));
    EXPECT_DOUBLE_EQ(s.get("alpha"), 1.5);
    EXPECT_DOUBLE_EQ(s.get("beta"), -2.0);
}

TEST(StatSetTest, MissingReadsAsZero)
{
    StatSet s;
    EXPECT_FALSE(s.has("nope"));
    EXPECT_DOUBLE_EQ(s.get("nope"), 0.0);
}

// Lookups go through the lazy name index; a duplicate name must keep
// reading as its first occurrence, exactly like the original
// front-to-back linear scan.
TEST(StatSetTest, DuplicateNameReadsFirstOccurrence)
{
    StatSet s;
    s.add("dup", 1.0);
    s.add("other", 5.0);
    s.add("dup", 2.0);
    EXPECT_TRUE(s.has("dup"));
    EXPECT_DOUBLE_EQ(s.get("dup"), 1.0);
    ASSERT_EQ(s.entries().size(), 3u);
    EXPECT_DOUBLE_EQ(s.entries()[2].second, 2.0); // both kept in order
}

// Appends after a lookup must be visible to later lookups (the index
// catches up lazily instead of being rebuilt per add).
TEST(StatSetTest, IndexCatchesUpAfterInterleavedAdds)
{
    StatSet s;
    s.add("a", 1.0);
    EXPECT_DOUBLE_EQ(s.get("a"), 1.0); // builds index over {a}
    EXPECT_FALSE(s.has("b"));
    s.add("b", 2.0);
    s.add("a", 9.0); // duplicate appended after the index was built
    EXPECT_TRUE(s.has("b"));
    EXPECT_DOUBLE_EQ(s.get("b"), 2.0);
    EXPECT_DOUBLE_EQ(s.get("a"), 1.0); // still the first occurrence

    StatSet merged;
    merged.add("x", 3.0);
    EXPECT_TRUE(merged.has("x"));
    merged.merge("pre.", s);
    EXPECT_DOUBLE_EQ(merged.get("pre.b"), 2.0);
    EXPECT_DOUBLE_EQ(merged.get("pre.a"), 1.0);
}

TEST(StatSetTest, InsertionOrderPreserved)
{
    StatSet s;
    s.add("z", 1);
    s.add("a", 2);
    s.add("m", 3);
    ASSERT_EQ(s.entries().size(), 3u);
    EXPECT_EQ(s.entries()[0].first, "z");
    EXPECT_EQ(s.entries()[1].first, "a");
    EXPECT_EQ(s.entries()[2].first, "m");
}

TEST(StatSetTest, MergePrefixesNames)
{
    StatSet inner;
    inner.add("x", 7);
    StatSet outer;
    outer.add("y", 1);
    outer.merge("core0.", inner);
    EXPECT_DOUBLE_EQ(outer.get("core0.x"), 7.0);
    EXPECT_EQ(outer.entries().size(), 2u);
}

TEST(StatSetTest, ToStringContainsEntries)
{
    StatSet s;
    s.add("ipc", 2.5);
    const std::string text = s.toString();
    EXPECT_NE(text.find("ipc"), std::string::npos);
    EXPECT_NE(text.find("2.5"), std::string::npos);
}

TEST(MathTest, Geomean)
{
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
    EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-12);
    EXPECT_NEAR(geomean({1.0, 1.0, 1.0}), 1.0, 1e-12);
}

TEST(MathTest, Amean)
{
    EXPECT_DOUBLE_EQ(amean({}), 0.0);
    EXPECT_DOUBLE_EQ(amean({1.0, 2.0, 3.0}), 2.0);
}

TEST(MathTest, RatioHandlesZeroDenominator)
{
    EXPECT_DOUBLE_EQ(ratio(5.0, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(ratio(6.0, 3.0), 2.0);
}

} // namespace
} // namespace padc
