/**
 * @file
 * Unit tests for the trace abstraction.
 */

#include <gtest/gtest.h>

#include "core/trace.hh"

namespace padc::core
{
namespace
{

TEST(VectorTraceTest, LoopsForever)
{
    VectorTrace trace({{1, 0x100, 0x400, true, false},
                       {2, 0x200, 0x404, false, false}});
    for (int rep = 0; rep < 3; ++rep) {
        TraceOp a = trace.next();
        EXPECT_EQ(a.addr, 0x100u);
        EXPECT_TRUE(a.is_load);
        TraceOp b = trace.next();
        EXPECT_EQ(b.addr, 0x200u);
        EXPECT_FALSE(b.is_load);
    }
}

TEST(VectorTraceTest, ResetRestarts)
{
    VectorTrace trace({{0, 0x100, 0, true, false},
                       {0, 0x200, 0, true, false},
                       {0, 0x300, 0, true, false}});
    trace.next();
    trace.next();
    trace.reset();
    EXPECT_EQ(trace.next().addr, 0x100u);
}

TEST(VectorTraceTest, PreservesAllFields)
{
    TraceOp op;
    op.compute_gap = 7;
    op.addr = 0xABC0;
    op.pc = 0x1234;
    op.is_load = false;
    op.dependent = true;
    VectorTrace trace({op});
    const TraceOp got = trace.next();
    EXPECT_EQ(got.compute_gap, 7u);
    EXPECT_EQ(got.addr, 0xABC0u);
    EXPECT_EQ(got.pc, 0x1234u);
    EXPECT_FALSE(got.is_load);
    EXPECT_TRUE(got.dependent);
}

} // namespace
} // namespace padc::core
