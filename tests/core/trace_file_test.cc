/**
 * @file
 * Unit tests for binary trace record/replay, including corruption
 * handling.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/trace_file.hh"
#include "workload/generator.hh"

namespace padc::core
{
namespace
{

class TraceFileTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path_ = ::testing::TempDir() + "padc_trace_test.trc";
    }

    void
    TearDown() override
    {
        std::remove(path_.c_str());
    }

    std::string path_;
};

std::vector<TraceOp>
sampleOps()
{
    return {
        {3, 0x1000, 0x400, true, false},
        {0, 0xFFFFFFFFFFC0ULL, 0x404, false, true},
        {1000000, 0x40, 0x9999, true, true},
    };
}

TEST_F(TraceFileTest, RoundTrip)
{
    const auto ops = sampleOps();
    ASSERT_TRUE(writeTraceFile(path_, ops));
    std::vector<TraceOp> loaded;
    ASSERT_TRUE(readTraceFile(path_, &loaded));
    ASSERT_EQ(loaded.size(), ops.size());
    for (std::size_t i = 0; i < ops.size(); ++i) {
        EXPECT_EQ(loaded[i].addr, ops[i].addr);
        EXPECT_EQ(loaded[i].pc, ops[i].pc);
        EXPECT_EQ(loaded[i].compute_gap, ops[i].compute_gap);
        EXPECT_EQ(loaded[i].is_load, ops[i].is_load);
        EXPECT_EQ(loaded[i].dependent, ops[i].dependent);
    }
}

TEST_F(TraceFileTest, FileTraceReplaysAndLoops)
{
    ASSERT_TRUE(writeTraceFile(path_, sampleOps()));
    FileTrace trace(path_);
    ASSERT_TRUE(trace.ok());
    EXPECT_EQ(trace.size(), 3u);
    EXPECT_EQ(trace.next().addr, 0x1000u);
    EXPECT_EQ(trace.next().addr, 0xFFFFFFFFFFC0ULL);
    EXPECT_EQ(trace.next().addr, 0x40u);
    EXPECT_EQ(trace.next().addr, 0x1000u); // wrapped
    trace.reset();
    EXPECT_EQ(trace.next().addr, 0x1000u);
}

TEST_F(TraceFileTest, MissingFileFails)
{
    std::vector<TraceOp> ops;
    std::string error;
    EXPECT_FALSE(readTraceFile("/nonexistent/padc.trc", &ops, &error));
    EXPECT_NE(error.find("cannot open"), std::string::npos) << error;
    FileTrace trace("/nonexistent/padc.trc");
    EXPECT_FALSE(trace.ok());
    EXPECT_FALSE(trace.error().empty());
}

TEST_F(TraceFileTest, BadMagicRejected)
{
    std::ofstream out(path_, std::ios::binary);
    out << "NOTATRACE-------garbage";
    out.close();
    std::vector<TraceOp> ops;
    std::string error;
    EXPECT_FALSE(readTraceFile(path_, &ops, &error));
    EXPECT_NE(error.find("bad magic"), std::string::npos) << error;
}

TEST_F(TraceFileTest, ShortHeaderRejected)
{
    std::ofstream out(path_, std::ios::binary);
    out << "PADC"; // 4 of 16 header bytes
    out.close();
    std::vector<TraceOp> ops;
    std::string error;
    EXPECT_FALSE(readTraceFile(path_, &ops, &error));
    EXPECT_NE(error.find("header"), std::string::npos) << error;
}

TEST_F(TraceFileTest, TruncationRejected)
{
    ASSERT_TRUE(writeTraceFile(path_, sampleOps()));
    // Chop the last record in half.
    std::ifstream in(path_, std::ios::binary);
    std::string data((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    in.close();
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(data.data(), static_cast<std::streamsize>(data.size() - 10));
    out.close();
    std::vector<TraceOp> ops;
    std::string error;
    EXPECT_FALSE(readTraceFile(path_, &ops, &error));
    EXPECT_TRUE(ops.empty());
    // The diagnostic reports the size disagreement, not just "failed".
    EXPECT_NE(error.find("truncated or corrupt"), std::string::npos)
        << error;
}

TEST_F(TraceFileTest, TrailingGarbageRejected)
{
    ASSERT_TRUE(writeTraceFile(path_, sampleOps()));
    {
        std::ofstream out(path_, std::ios::binary | std::ios::app);
        out << "extra bytes past the promised op count";
    }
    std::vector<TraceOp> ops;
    std::string error;
    EXPECT_FALSE(readTraceFile(path_, &ops, &error));
    EXPECT_NE(error.find("truncated or corrupt"), std::string::npos)
        << error;
}

TEST_F(TraceFileTest, CorruptCountRejectedBeforeAllocation)
{
    ASSERT_TRUE(writeTraceFile(path_, sampleOps()));
    // Overwrite the op count with an absurd value; the size check must
    // reject it up front instead of attempting a giant reserve().
    {
        std::fstream out(path_,
                         std::ios::binary | std::ios::in | std::ios::out);
        out.seekp(8);
        const unsigned char huge[8] = {0xff, 0xff, 0xff, 0xff,
                                       0xff, 0xff, 0xff, 0x7f};
        out.write(reinterpret_cast<const char *>(huge), 8);
    }
    std::vector<TraceOp> ops;
    std::string error;
    EXPECT_FALSE(readTraceFile(path_, &ops, &error));
    EXPECT_NE(error.find("promises"), std::string::npos) << error;
}

TEST_F(TraceFileTest, UnwritableDirectoryReportsOpenFailure)
{
    std::string error;
    EXPECT_FALSE(
        writeTraceFile("/nonexistent-dir/padc.trc", sampleOps(), &error));
    EXPECT_NE(error.find("cannot open"), std::string::npos) << error;
}

TEST_F(TraceFileTest, SuccessfulWriteLeavesNoTmpSibling)
{
    ASSERT_TRUE(writeTraceFile(path_, sampleOps()));
    EXPECT_FALSE(std::filesystem::exists(path_ + ".tmp"));
}

TEST_F(TraceFileTest, FailedCommitCleansUpTmpAndKeepsDestination)
{
    // Destination is a directory, so the final rename cannot succeed;
    // the write must fail without leaving its temp sibling behind or
    // disturbing what already sits at the destination path.
    const std::string dir = ::testing::TempDir() + "padc_trace_dir.trc";
    std::filesystem::create_directories(dir + "/occupied");
    std::string error;
    EXPECT_FALSE(writeTraceFile(dir, sampleOps(), &error));
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(std::filesystem::exists(dir + ".tmp"));
    EXPECT_TRUE(std::filesystem::is_directory(dir + "/occupied"));
    std::filesystem::remove_all(dir);
}

TEST_F(TraceFileTest, CaptureFromSyntheticGeneratorMatchesReplay)
{
    workload::TraceParams params;
    params.seed = 42;
    workload::SyntheticTrace generator(params);
    const auto ops = captureTrace(generator, 2000);
    ASSERT_TRUE(writeTraceFile(path_, ops));

    FileTrace trace(path_);
    ASSERT_TRUE(trace.ok());
    generator.reset();
    for (int i = 0; i < 2000; ++i) {
        const TraceOp a = generator.next();
        const TraceOp b = trace.next();
        ASSERT_EQ(a.addr, b.addr);
        ASSERT_EQ(a.compute_gap, b.compute_gap);
        ASSERT_EQ(a.is_load, b.is_load);
    }
}

TEST_F(TraceFileTest, EmptyTraceWritesButDoesNotReplay)
{
    ASSERT_TRUE(writeTraceFile(path_, {}));
    std::vector<TraceOp> ops;
    EXPECT_TRUE(readTraceFile(path_, &ops));
    EXPECT_TRUE(ops.empty());
    FileTrace trace(path_);
    EXPECT_FALSE(trace.ok()); // empty traces cannot drive a core
}

} // namespace
} // namespace padc::core
