/**
 * @file
 * Unit tests for the OoO-lite core model: retirement, load blocking,
 * LSQ limits, dependence serialization, stores, retries, SPL
 * accounting, and runahead execution.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "core/core.hh"
#include "core/trace.hh"

namespace padc::core
{
namespace
{

/** Scriptable memory port. */
class MockPort : public MemoryPort
{
  public:
    struct Access
    {
        Addr addr;
        bool is_load;
        bool runahead;
        std::uint64_t tag;
        Cycle at;
    };

    AccessReply
    access(CoreId, Addr addr, Addr, bool is_load, std::uint64_t tag,
           bool runahead, Cycle now) override
    {
        log.push_back({addr, is_load, runahead, tag, now});
        if (retries_left > 0) {
            --retries_left;
            return {AccessStatus::Retry, 0};
        }
        if (pending_addrs.count(lineAlign(addr))) {
            pending_tags.push_back(tag);
            return {AccessStatus::Pending, 0};
        }
        return {AccessStatus::Complete, now + hit_latency};
    }

    std::vector<Access> log;
    std::vector<std::uint64_t> pending_tags;
    std::map<Addr, int> pending_addrs;
    int retries_left = 0;
    Cycle hit_latency = 2;
};

CoreConfig
config()
{
    CoreConfig cfg;
    cfg.window_size = 64;
    cfg.retire_width = 4;
    cfg.fetch_width = 4;
    cfg.lsq_size = 8;
    cfg.mem_issue_width = 2;
    return cfg;
}

void
runCycles(Core &core, Cycle from, Cycle count)
{
    for (Cycle t = from; t < from + count; ++t)
        core.tick(t);
}

TEST(CoreTest, ComputeBoundIpcEqualsRetireWidth)
{
    VectorTrace trace({{399, 0x100, 0x400, true, false}});
    MockPort port;
    Core core(0, config(), trace, port);
    runCycles(core, 0, 1000);
    // 4-wide: ~4000 instructions in 1000 cycles (loads all "hit").
    EXPECT_NEAR(static_cast<double>(core.stats().instructions), 4000.0,
                100.0);
}

TEST(CoreTest, PendingLoadBlocksRetirementUntilComplete)
{
    VectorTrace trace({{0, 0x1000, 0x400, true, false},
                       {1000, 0x40, 0x404, true, false}});
    MockPort port;
    port.pending_addrs[0x1000] = 1;
    Core core(0, config(), trace, port);
    runCycles(core, 0, 50);
    // The first load (miss) plus at most a handful of instructions can
    // retire... actually nothing behind the head load retires.
    const std::uint64_t before = core.stats().instructions;
    EXPECT_LE(before, 1u);
    ASSERT_EQ(port.pending_tags.size(), 1u);
    core.completeLoad(port.pending_tags[0], 50);
    runCycles(core, 50, 20);
    EXPECT_GT(core.stats().instructions, before);
    EXPECT_GT(core.stats().loads, 0u);
}

TEST(CoreTest, SplCountsHeadBlockedCycles)
{
    VectorTrace trace({{0, 0x1000, 0x400, true, false},
                       {1000, 0x40, 0x404, true, false}});
    MockPort port;
    port.pending_addrs[0x1000] = 1;
    Core core(0, config(), trace, port);
    runCycles(core, 0, 100);
    // Head blocked for nearly all 100 cycles.
    EXPECT_GT(core.stats().load_stall_cycles, 90u);
}

TEST(CoreTest, StoresRetireOnceIssuedWithoutWaiting)
{
    // Stores take 500 cycles to "complete", loads the same. A store
    // stream retires at full width because stores only need to issue;
    // a load stream with identical latency crawls.
    VectorTrace stores({{10, 0x2000, 0x400, false, false}});
    MockPort store_port;
    store_port.hit_latency = 500;
    Core store_core(0, config(), stores, store_port);
    runCycles(store_core, 0, 200);
    EXPECT_GT(store_core.stats().instructions, 500u);
    EXPECT_GT(store_core.stats().stores, 10u);

    VectorTrace loads({{10, 0x2000, 0x400, true, false}});
    MockPort load_port;
    load_port.hit_latency = 500;
    Core load_core(0, config(), loads, load_port);
    runCycles(load_core, 0, 200);
    EXPECT_LT(load_core.stats().instructions,
              store_core.stats().instructions / 4);
}

TEST(CoreTest, LsqBoundsOutstandingMisses)
{
    // Back-to-back missing loads to distinct lines.
    std::vector<TraceOp> ops;
    for (int i = 0; i < 64; ++i)
        ops.push_back({0, static_cast<Addr>(0x10000 + i * 64), 0x400,
                       true, false});
    VectorTrace trace(ops);
    MockPort port;
    for (const auto &op : ops)
        port.pending_addrs[op.addr] = 1;
    CoreConfig cfg = config();
    cfg.lsq_size = 8;
    Core core(0, cfg, trace, port);
    runCycles(core, 0, 100);
    EXPECT_LE(port.pending_tags.size(), 8u);
}

TEST(CoreTest, DependentLoadWaitsForOutstandingMisses)
{
    std::vector<TraceOp> ops;
    ops.push_back({0, 0x10000, 0x400, true, false});
    ops.push_back({0, 0x20000, 0x404, true, true}); // dependent
    ops.push_back({0, 0x30000, 0x408, true, false});
    VectorTrace trace(ops);
    MockPort port;
    port.pending_addrs[0x10000] = 1;
    port.pending_addrs[0x20000] = 1;
    port.pending_addrs[0x30000] = 1;
    Core core(0, config(), trace, port);
    runCycles(core, 0, 50);
    // Only the first load may be outstanding: the dependent one stalls
    // the in-order issue queue behind it.
    ASSERT_EQ(port.pending_tags.size(), 1u);
    core.completeLoad(port.pending_tags[0], 50);
    runCycles(core, 50, 10);
    EXPECT_GE(port.pending_tags.size(), 2u);
}

TEST(CoreTest, RetryBouncesAreRetried)
{
    VectorTrace trace({{5, 0x40, 0x400, true, false}});
    MockPort port;
    port.retries_left = 3;
    Core core(0, config(), trace, port);
    runCycles(core, 0, 50);
    EXPECT_EQ(core.stats().issue_retries, 3u);
    EXPECT_GT(core.stats().mem_ops_issued, 0u);
    EXPECT_GT(core.stats().loads, 0u);
}

TEST(CoreTest, RunaheadTriggersOnPendingHeadLoad)
{
    std::vector<TraceOp> ops;
    ops.push_back({0, 0x10000, 0x400, true, false});
    for (int i = 1; i < 32; ++i)
        ops.push_back({2, static_cast<Addr>(0x20000 + i * 64), 0x400,
                       true, false});
    VectorTrace trace(ops);
    MockPort port;
    port.pending_addrs[0x10000] = 1;
    CoreConfig cfg = config();
    cfg.runahead = true;
    Core core(0, cfg, trace, port);
    runCycles(core, 0, 100);
    EXPECT_TRUE(core.inRunahead());
    EXPECT_EQ(core.stats().runahead_episodes, 1u);
    EXPECT_GT(core.stats().runahead_ops_issued, 0u);
    // Runahead accesses are flagged.
    bool saw_runahead = false;
    for (const auto &a : port.log)
        saw_runahead = saw_runahead || a.runahead;
    EXPECT_TRUE(saw_runahead);
    // Completing the blocking load exits runahead.
    ASSERT_FALSE(port.pending_tags.empty());
    core.completeLoad(port.pending_tags[0], 100);
    EXPECT_FALSE(core.inRunahead());
}

TEST(CoreTest, RunaheadDisabledNeverEnters)
{
    VectorTrace trace({{0, 0x10000, 0x400, true, false}});
    MockPort port;
    port.pending_addrs[0x10000] = 1;
    Core core(0, config(), trace, port);
    runCycles(core, 0, 200);
    EXPECT_FALSE(core.inRunahead());
    EXPECT_EQ(core.stats().runahead_episodes, 0u);
}

TEST(CoreTest, RunaheadReplaysWithoutSkippingInstructions)
{
    // After runahead, the retired instruction count must match the
    // non-runahead run exactly (no ops lost or duplicated).
    auto make_ops = [] {
        std::vector<TraceOp> ops;
        ops.push_back({3, 0x10000, 0x400, true, false});
        for (int i = 1; i < 16; ++i)
            ops.push_back({3, static_cast<Addr>(0x40 + i * 64), 0x400,
                           true, false});
        return ops;
    };

    // Reference run: no runahead, miss completes at cycle 60.
    VectorTrace trace_a(make_ops());
    MockPort port_a;
    port_a.pending_addrs[0x10000] = 1;
    Core ref(0, config(), trace_a, port_a);
    runCycles(ref, 0, 60);
    ref.completeLoad(port_a.pending_tags.at(0), 60);
    runCycles(ref, 60, 400);

    VectorTrace trace_b(make_ops());
    MockPort port_b;
    port_b.pending_addrs[0x10000] = 1;
    CoreConfig cfg = config();
    cfg.runahead = true;
    Core ra(0, cfg, trace_b, port_b);
    runCycles(ra, 0, 60);
    ra.completeLoad(port_b.pending_tags.at(0), 60);
    runCycles(ra, 60, 400);

    // Runahead must not change architectural progress (it can only help
    // timing through the memory system, which the mock ignores).
    EXPECT_EQ(ra.stats().instructions, ref.stats().instructions);
    EXPECT_EQ(ra.stats().loads, ref.stats().loads);
}

TEST(CoreTest, RunaheadSkipsDependentLoads)
{
    std::vector<TraceOp> ops;
    ops.push_back({0, 0x10000, 0x400, true, false});
    ops.push_back({0, 0x20000, 0x404, true, true}); // dependent
    ops.push_back({0, 0x30000, 0x408, true, false});
    VectorTrace trace(ops);
    MockPort port;
    port.pending_addrs[0x10000] = 1;
    port.pending_addrs[0x20000] = 1;
    port.pending_addrs[0x30000] = 1;
    CoreConfig cfg = config();
    cfg.runahead = true;
    cfg.window_size = 4; // force the window to fill quickly
    Core core(0, cfg, trace, port);
    runCycles(core, 0, 200);
    // Runahead must have issued 0x30000-line loads but never a
    // runahead access for the dependent 0x20000.
    bool dependent_in_runahead = false;
    bool independent_in_runahead = false;
    for (const auto &a : port.log) {
        if (!a.runahead)
            continue;
        dependent_in_runahead |= lineAlign(a.addr) == 0x20000u;
        independent_in_runahead |= lineAlign(a.addr) == 0x30000u;
    }
    EXPECT_FALSE(dependent_in_runahead);
    EXPECT_TRUE(independent_in_runahead);
}

TEST(CoreTest, WindowLimitsMlp)
{
    // With a large gap, few loads fit in the window at once.
    std::vector<TraceOp> ops;
    for (int i = 0; i < 64; ++i)
        ops.push_back({31, static_cast<Addr>(0x10000 + i * 64), 0x400,
                       true, false});
    VectorTrace trace(ops);
    MockPort port;
    for (const auto &op : ops)
        port.pending_addrs[op.addr] = 1;
    CoreConfig cfg = config();
    cfg.window_size = 64; // 64 instrs / 32 per load -> ~2 loads
    cfg.lsq_size = 32;
    Core core(0, cfg, trace, port);
    runCycles(core, 0, 200);
    EXPECT_LE(port.pending_tags.size(), 3u);
    EXPECT_GE(port.pending_tags.size(), 2u);
}

} // namespace
} // namespace padc::core
