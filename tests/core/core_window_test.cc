/**
 * @file
 * Additional core-model tests: fetch/window accounting, compute-block
 * merging behaviour, SPL semantics for stores, and runahead episode
 * bounds.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "core/core.hh"
#include "core/trace.hh"

namespace padc::core
{
namespace
{

class CountingPort : public MemoryPort
{
  public:
    AccessReply
    access(CoreId, Addr addr, Addr, bool, std::uint64_t tag,
           bool runahead, Cycle now) override
    {
        ++accesses;
        runahead_accesses += runahead ? 1 : 0;
        if (pending_addrs.count(lineAlign(addr))) {
            pending_tags.push_back(tag);
            return {AccessStatus::Pending, 0};
        }
        return {AccessStatus::Complete, now + 2};
    }

    std::size_t accesses = 0;
    std::size_t runahead_accesses = 0;
    std::vector<std::uint64_t> pending_tags;
    std::map<Addr, int> pending_addrs;
};

CoreConfig
config()
{
    CoreConfig cfg;
    cfg.window_size = 32;
    cfg.retire_width = 4;
    cfg.fetch_width = 4;
    cfg.lsq_size = 8;
    cfg.mem_issue_width = 2;
    return cfg;
}

TEST(CoreWindowTest, BlockedWindowStopsIssuingNewOps)
{
    // Head load blocks; the 32-entry window holds ~3 ops at gap 9, so
    // only a bounded number of accesses can have been issued.
    std::vector<TraceOp> ops;
    for (int i = 0; i < 64; ++i)
        ops.push_back({9, static_cast<Addr>(0x10000 + i * 64), 0x400,
                       true, false});
    VectorTrace trace(ops);
    CountingPort port;
    for (const auto &op : ops)
        port.pending_addrs[op.addr] = 1;
    Core core(0, config(), trace, port);
    for (Cycle t = 0; t < 500; ++t)
        core.tick(t);
    // window 32 / (9+1) instr per op ~ 3-4 ops fetched+issued.
    EXPECT_LE(port.accesses, 5u);
    EXPECT_GE(port.accesses, 3u);
}

TEST(CoreWindowTest, StoresDoNotAccrueLoadStall)
{
    VectorTrace trace({{0, 0x5000, 0x400, false, false}});
    CountingPort port;
    port.pending_addrs[0x5000] = 1;
    Core core(0, config(), trace, port);
    for (Cycle t = 0; t < 300; ++t)
        core.tick(t);
    // Stores block only on issue bandwidth, never as "load stalls".
    EXPECT_EQ(core.stats().load_stall_cycles, 0u);
}

TEST(CoreWindowTest, ZeroGapTraceSustainsMemThroughput)
{
    VectorTrace trace({{0, 0x40, 0x400, true, false}});
    CountingPort port;
    Core core(0, config(), trace, port);
    for (Cycle t = 0; t < 1000; ++t)
        core.tick(t);
    // mem_issue_width = 2: up to 2 accesses per cycle; with latency-2
    // hits the core should sustain well over 1 per cycle.
    EXPECT_GT(port.accesses, 900u);
}

TEST(CoreWindowTest, RunaheadEpisodeBounded)
{
    std::vector<TraceOp> ops;
    ops.push_back({0, 0x10000, 0x400, true, false});
    ops.push_back({0, 0x80, 0x404, true, false});
    VectorTrace trace(ops);
    CountingPort port;
    port.pending_addrs[0x10000] = 1;
    CoreConfig cfg = config();
    cfg.runahead = true;
    cfg.runahead_max_ops = 16;
    cfg.lsq_size = 64;
    Core core(0, cfg, trace, port);
    for (Cycle t = 0; t < 2000; ++t)
        core.tick(t);
    EXPECT_TRUE(core.inRunahead());
    // The episode consumed at most runahead_max_ops trace operations.
    EXPECT_LE(core.stats().runahead_ops_issued, 16u);
}

TEST(CoreWindowTest, SecondRunaheadEpisodeAfterFirstResolves)
{
    std::vector<TraceOp> ops;
    for (int i = 0; i < 8; ++i)
        ops.push_back({3, static_cast<Addr>(0x10000 + i * 64), 0x400,
                       true, false});
    VectorTrace trace(ops);
    CountingPort port;
    for (const auto &op : ops)
        port.pending_addrs[op.addr] = 1;
    CoreConfig cfg = config();
    cfg.runahead = true;
    Core core(0, cfg, trace, port);

    Cycle t = 0;
    for (; t < 100; ++t)
        core.tick(t);
    ASSERT_TRUE(core.inRunahead());
    // Resolve every outstanding miss; the core retires and re-enters
    // runahead on the next blocking miss.
    auto tags = port.pending_tags;
    port.pending_tags.clear();
    for (const auto tag : tags)
        core.completeLoad(tag, t);
    for (Cycle end = t + 300; t < end; ++t)
        core.tick(t);
    EXPECT_GE(core.stats().runahead_episodes, 2u);
}

TEST(CoreWindowTest, InstructionsNeverExceedFetchBudget)
{
    VectorTrace trace({{3, 0x40, 0x400, true, false}});
    CountingPort port;
    Core core(0, config(), trace, port);
    std::uint64_t prev = 0;
    for (Cycle t = 0; t < 500; ++t) {
        core.tick(t);
        const std::uint64_t now = core.stats().instructions;
        EXPECT_LE(now - prev, 4u); // retire width per cycle
        prev = now;
    }
}

} // namespace
} // namespace padc::core
