/**
 * @file
 * Exhaustive lattice-equivalence suite: the table-driven priorityKey
 * must reproduce, bit for bit, the hardcoded per-policy switch it
 * replaced, for every (policy, class, per-core accuracy, row_hit,
 * urgency flag, ranking flag) combination -- plus total-order sanity
 * checks and structural invariants of the reserved lattice rows.
 *
 * The frozen model below is a verbatim transcription of the retired
 * switch (policy.cc before the lattice refactor). It is deliberately
 * NOT shared with production code: the whole point is an independent
 * second implementation to diff against.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstdint>

#include "memctrl/policy.hh"

namespace padc::memctrl
{
namespace
{

// ---- Frozen copy of the pre-lattice switch (do not "fix") -----------

constexpr std::uint32_t kFrozenArrivalBits = 52;
constexpr std::uint64_t kFrozenArrivalMask =
    (1ULL << kFrozenArrivalBits) - 1;
constexpr std::uint32_t kFrozenRankShift = kFrozenArrivalBits;
constexpr std::uint32_t kFrozenUrgentShift = kFrozenRankShift + 8;
constexpr std::uint32_t kFrozenRowHitShift = kFrozenUrgentShift + 1;
constexpr std::uint32_t kFrozenLevel0Shift = kFrozenRowHitShift + 1;

struct FrozenInputs
{
    SchedPolicyKind kind;
    bool urgency_enabled;
    bool ranking_enabled;
    bool is_prefetch;
    bool core_accurate;
    std::uint8_t rank; ///< rank_[core] at key time
};

/** The old switch: only demand reads and prefetches ever existed. */
std::uint64_t
frozenPriorityKey(const FrozenInputs &in, std::uint64_t seq,
                  bool row_hit)
{
    std::uint64_t level0 = 0;
    std::uint64_t urgent = 0;
    std::uint64_t rank = 0;
    switch (in.kind) {
      case SchedPolicyKind::FrFcfs:
        level0 = 1;
        break;
      case SchedPolicyKind::DemandFirst:
        level0 = in.is_prefetch ? 0 : 1;
        break;
      case SchedPolicyKind::PrefetchFirst:
        level0 = in.is_prefetch ? 1 : 0;
        break;
      case SchedPolicyKind::Aps:
        level0 = (!in.is_prefetch || in.core_accurate) ? 1 : 0;
        if (in.urgency_enabled && !in.is_prefetch && !in.core_accurate)
            urgent = 1;
        if (in.ranking_enabled && level0 != 0)
            rank = in.rank;
        break;
    }
    const std::uint64_t inv_arrival = (~seq) & kFrozenArrivalMask;
    return (level0 << kFrozenLevel0Shift) |
           ((row_hit ? 1ULL : 0ULL) << kFrozenRowHitShift) |
           (urgent << kFrozenUrgentShift) | (rank << kFrozenRankShift) |
           inv_arrival;
}

// ---- Shared fixture: 2 cores, core 0 accurate, core 1 inaccurate ----

constexpr CoreId kAccurateCore = 0;
constexpr CoreId kInaccurateCore = 1;

class LatticeEquivalence : public ::testing::Test
{
  protected:
    LatticeEquivalence() : tracker_(2, trackerConfig())
    {
        // One interval of synthetic events pins the accuracy estimates
        // on either side of the 0.85 promotion threshold.
        for (int i = 0; i < 100; ++i) {
            tracker_.onPrefetchSent(kAccurateCore);
            tracker_.onPrefetchSent(kInaccurateCore);
        }
        for (int i = 0; i < 95; ++i)
            tracker_.onPrefetchUsed(kAccurateCore);
        for (int i = 0; i < 10; ++i)
            tracker_.onPrefetchUsed(kInaccurateCore);
        tracker_.tick(100);
    }

    static AccuracyConfig
    trackerConfig()
    {
        AccuracyConfig c;
        c.interval = 100;
        c.min_samples = 1;
        return c;
    }

    AccuracyTracker tracker_;
};

/**
 * The full cross product the satellite demands: every policy x class x
 * per-core accuracy state x row_hit x urgency flag x ranking flag, over
 * a seq sample covering both arrival-field extremes, must produce a key
 * identical to the frozen switch. Classes beyond the original two are
 * checked against the frozen model of the legacy class they mirror
 * (PtwRead -> demand, DramCacheFill -> prefetch), which is exactly the
 * contract the reserved rows advertise.
 */
TEST_F(LatticeEquivalence, TableMatchesFrozenSwitchExhaustively)
{
    constexpr SchedPolicyKind kKinds[] = {
        SchedPolicyKind::FrFcfs, SchedPolicyKind::DemandFirst,
        SchedPolicyKind::PrefetchFirst, SchedPolicyKind::Aps};
    // (class, is_prefetch equivalent in the old model)
    constexpr struct
    {
        RequestClass cls;
        bool is_prefetch;
    } kClasses[] = {
        {RequestClass::DemandRead, false},
        {RequestClass::Prefetch, true},
        {RequestClass::PtwRead, false},
        {RequestClass::DramCacheFill, true},
    };
    constexpr std::uint64_t kSeqs[] = {0, 1, 52, (1ULL << 52) - 1,
                                       ~0ULL};

    std::array<std::uint32_t, kMaxCores> counts{};
    counts[kAccurateCore] = 30;  // rank 255 - 30 = 225
    counts[kInaccurateCore] = 2; // rank 255 - 2 = 253
    const std::array<std::uint8_t, 2> ranks = {225, 253};

    std::size_t combos = 0;
    for (const SchedPolicyKind kind : kKinds) {
        for (const bool urgency : {false, true}) {
            for (const bool ranking : {false, true}) {
                SchedulerConfig config;
                config.kind = kind;
                config.urgency_enabled = urgency;
                config.ranking_enabled = ranking;
                SchedContext ctx(config, tracker_);
                ctx.updateRanks(counts, 2);
                for (const auto &cls : kClasses) {
                    for (const CoreId core :
                         {kAccurateCore, kInaccurateCore}) {
                        const FrozenInputs in{
                            kind,
                            urgency,
                            ranking,
                            cls.is_prefetch,
                            core == kAccurateCore,
                            ranking ? ranks[core]
                                    : static_cast<std::uint8_t>(0)};
                        for (const bool row_hit : {false, true}) {
                            for (const std::uint64_t seq : kSeqs) {
                                ASSERT_EQ(
                                    ctx.priorityKey(cls.cls, core, seq,
                                                    row_hit),
                                    frozenPriorityKey(in, seq, row_hit))
                                    << toString(kind) << " "
                                    << toString(cls.cls) << " core "
                                    << core << " urg " << urgency
                                    << " rank " << ranking << " hit "
                                    << row_hit << " seq " << seq;
                                ++combos;
                            }
                        }
                    }
                }
            }
        }
    }
    // 4 kinds x 2 urg x 2 rank x 4 classes x 2 cores x 2 hit x 5 seqs.
    EXPECT_EQ(combos, 4u * 2 * 2 * 4 * 2 * 2 * 5);
}

/** Request-object and raw-field key variants agree. */
TEST_F(LatticeEquivalence, RequestAndRawKeyVariantsAgree)
{
    SchedulerConfig config;
    config.kind = SchedPolicyKind::Aps;
    SchedContext ctx(config, tracker_);
    for (const RequestClass cls :
         {RequestClass::DemandRead, RequestClass::Prefetch}) {
        for (const CoreId core : {kAccurateCore, kInaccurateCore}) {
            Request req;
            req.cls = cls;
            req.core = core;
            req.seq = 41;
            EXPECT_EQ(ctx.priorityKey(req, true),
                      ctx.priorityKey(cls, core, 41, true));
        }
    }
}

// ---- Structural invariants of the lattice tables --------------------

TEST(LatticeTables, ReservedRowsMirrorTheirLegacyClass)
{
    for (const SchedPolicyKind kind :
         {SchedPolicyKind::FrFcfs, SchedPolicyKind::DemandFirst,
          SchedPolicyKind::PrefetchFirst, SchedPolicyKind::Aps}) {
        const PolicyLattice &lattice = policyLattice(kind);
        for (int acc = 0; acc < 2; ++acc) {
            // PTW reads rank with demands, DRAM-cache fills with
            // prefetches (the documented reserved-row contract).
            EXPECT_EQ(lattice.of(RequestClass::PtwRead)[acc].level,
                      lattice.of(RequestClass::DemandRead)[acc].level)
                << toString(kind);
            EXPECT_EQ(lattice.of(RequestClass::PtwRead)[acc].urgent,
                      lattice.of(RequestClass::DemandRead)[acc].urgent)
                << toString(kind);
            EXPECT_EQ(lattice.of(RequestClass::DramCacheFill)[acc].level,
                      lattice.of(RequestClass::Prefetch)[acc].level)
                << toString(kind);
            EXPECT_EQ(
                lattice.of(RequestClass::DramCacheFill)[acc].urgent,
                lattice.of(RequestClass::Prefetch)[acc].urgent)
                << toString(kind);
            // Writebacks are reserved: always preferred, never urgent.
            EXPECT_EQ(lattice.of(RequestClass::Writeback)[acc].level, 1);
            EXPECT_FALSE(lattice.of(RequestClass::Writeback)[acc].urgent);
        }
    }
}

TEST(LatticeTables, OnlyApsIsRankedOrAccuracyDependent)
{
    EXPECT_FALSE(policyLattice(SchedPolicyKind::FrFcfs).ranked);
    EXPECT_FALSE(policyLattice(SchedPolicyKind::DemandFirst).ranked);
    EXPECT_FALSE(policyLattice(SchedPolicyKind::PrefetchFirst).ranked);
    EXPECT_TRUE(policyLattice(SchedPolicyKind::Aps).ranked);
}

// ---- Total-order sanity (paper semantics spot checks) ---------------

class LatticeOrder : public LatticeEquivalence
{
};

TEST_F(LatticeOrder, DemandFirstDemandBeatsAnyPrefetch)
{
    SchedulerConfig config;
    config.kind = SchedPolicyKind::DemandFirst;
    SchedContext ctx(config, tracker_);
    // Row-conflict old demand still beats a row-hit young prefetch,
    // regardless of which core sent the prefetch.
    for (const CoreId core : {kAccurateCore, kInaccurateCore})
        EXPECT_GT(ctx.priorityKey(RequestClass::DemandRead, core, 9,
                                  false),
                  ctx.priorityKey(RequestClass::Prefetch, core, 1, true));
}

TEST_F(LatticeOrder, ApsDemandOutranksInaccuratePrefetch)
{
    SchedulerConfig config;
    config.kind = SchedPolicyKind::Aps;
    SchedContext ctx(config, tracker_);
    EXPECT_GT(
        ctx.priorityKey(RequestClass::DemandRead, kAccurateCore, 9,
                        false),
        ctx.priorityKey(RequestClass::Prefetch, kInaccurateCore, 1,
                        true));
}

TEST_F(LatticeOrder, ApsAccuratePrefetchTiesDemandLevel)
{
    SchedulerConfig config;
    config.kind = SchedPolicyKind::Aps;
    config.urgency_enabled = false;
    SchedContext ctx(config, tracker_);
    // Same level, same row-hit: FCFS decides between an accurate-core
    // prefetch and an accurate-core demand.
    EXPECT_GT(ctx.priorityKey(RequestClass::Prefetch, kAccurateCore, 1,
                              true),
              ctx.priorityKey(RequestClass::DemandRead, kAccurateCore, 2,
                              true));
}

TEST_F(LatticeOrder, FrFcfsIsClassBlind)
{
    SchedulerConfig config;
    config.kind = SchedPolicyKind::FrFcfs;
    SchedContext ctx(config, tracker_);
    for (std::size_t c = 0; c < kRequestClassCount; ++c) {
        EXPECT_EQ(ctx.priorityKey(static_cast<RequestClass>(c),
                                  kInaccurateCore, 7, true),
                  ctx.priorityKey(RequestClass::DemandRead,
                                  kAccurateCore, 7, true));
    }
}

TEST_F(LatticeOrder, UrgencyRespectsRowHitPrecedence)
{
    SchedulerConfig config;
    config.kind = SchedPolicyKind::Aps;
    SchedContext ctx(config, tracker_);
    // Urgent demand beats a same-row-hit non-urgent demand ...
    EXPECT_GT(ctx.priorityKey(RequestClass::DemandRead, kInaccurateCore,
                              9, true),
              ctx.priorityKey(RequestClass::DemandRead, kAccurateCore, 1,
                              true));
    // ... but cannot leapfrog the row-hit level above it (Rule 1).
    EXPECT_LT(ctx.priorityKey(RequestClass::DemandRead, kInaccurateCore,
                              9, false),
              ctx.priorityKey(RequestClass::DemandRead, kAccurateCore, 1,
                              true));
}

} // namespace
} // namespace padc::memctrl
