/**
 * @file
 * Unit tests for the Adaptive Prefetch Dropping unit (paper Section 4.3
 * and Table 6).
 */

#include <gtest/gtest.h>

#include "memctrl/dropping.hh"

namespace padc::memctrl
{
namespace
{

class DroppingTest : public ::testing::Test
{
  protected:
    DroppingTest() : tracker_(1, trackerConfig()) {}

    static AccuracyConfig
    trackerConfig()
    {
        AccuracyConfig c;
        c.interval = 100;
        c.min_samples = 1;
        return c;
    }

    void
    setAccuracy(double accuracy)
    {
        for (int i = 0; i < 100; ++i)
            tracker_.onPrefetchSent(0);
        for (int i = 0; i < static_cast<int>(accuracy * 100 + 0.5); ++i)
            tracker_.onPrefetchUsed(0);
        tracker_.tick(boundary_);
        boundary_ += 100;
    }

    Request
    prefetchAged(Cycle age)
    {
        Request r;
        r.core = 0;
        r.cls = RequestClass::Prefetch;
        r.was_prefetch = true;
        r.arrival = 0;
        now_ = age;
        return r;
    }

    SchedulerConfig config_;
    AccuracyTracker tracker_;
    Cycle boundary_ = 100;
    Cycle now_ = 0;
};

TEST_F(DroppingTest, ThresholdTableBands)
{
    ApdUnit apd(config_, tracker_);
    setAccuracy(0.05);
    EXPECT_EQ(apd.dropThreshold(0), config_.drop_thresholds[0]); // 100
    setAccuracy(0.20);
    EXPECT_EQ(apd.dropThreshold(0), config_.drop_thresholds[1]); // 1500
    setAccuracy(0.50);
    EXPECT_EQ(apd.dropThreshold(0), config_.drop_thresholds[2]); // 50000
    setAccuracy(0.90);
    EXPECT_EQ(apd.dropThreshold(0), config_.drop_thresholds[3]); // 100000
}

TEST_F(DroppingTest, BandBoundariesAreHalfOpen)
{
    ApdUnit apd(config_, tracker_);
    setAccuracy(0.10); // exactly at the first bound -> second band
    EXPECT_EQ(apd.dropThreshold(0), config_.drop_thresholds[1]);
    setAccuracy(0.30);
    EXPECT_EQ(apd.dropThreshold(0), config_.drop_thresholds[2]);
    setAccuracy(0.70);
    EXPECT_EQ(apd.dropThreshold(0), config_.drop_thresholds[3]);
}

TEST_F(DroppingTest, DropsOldPrefetchAtLowAccuracy)
{
    ApdUnit apd(config_, tracker_);
    setAccuracy(0.0); // threshold 100 cycles
    Request r = prefetchAged(201);
    EXPECT_TRUE(apd.shouldDrop(r, now_));
}

TEST_F(DroppingTest, KeepsYoungPrefetch)
{
    ApdUnit apd(config_, tracker_);
    setAccuracy(0.0);
    Request r = prefetchAged(99);
    EXPECT_FALSE(apd.shouldDrop(r, now_));
}

TEST_F(DroppingTest, AgeIsQuantized)
{
    // With age_quantum 100 and threshold 100, an age of 150 quantizes to
    // 100, which is NOT > 100 -- matching the coarse hardware AGE field.
    ApdUnit apd(config_, tracker_);
    setAccuracy(0.0);
    Request r = prefetchAged(150);
    EXPECT_FALSE(apd.shouldDrop(r, now_));
    r = prefetchAged(200);
    EXPECT_TRUE(apd.shouldDrop(r, now_));
}

TEST_F(DroppingTest, NeverDropsDemands)
{
    ApdUnit apd(config_, tracker_);
    setAccuracy(0.0);
    Request r = prefetchAged(100000);
    r.cls = RequestClass::DemandRead; // promoted or plain demand
    EXPECT_FALSE(apd.shouldDrop(r, now_));
}

TEST_F(DroppingTest, NeverDropsWrites)
{
    ApdUnit apd(config_, tracker_);
    setAccuracy(0.0);
    Request r = prefetchAged(100000);
    r.cls = RequestClass::Writeback;
    EXPECT_FALSE(apd.shouldDrop(r, now_));
}

TEST_F(DroppingTest, NeverDropsInFlightRequests)
{
    ApdUnit apd(config_, tracker_);
    setAccuracy(0.0);
    Request r = prefetchAged(100000);
    r.state = RequestState::Servicing;
    EXPECT_FALSE(apd.shouldDrop(r, now_));
}

TEST_F(DroppingTest, HighAccuracyKeepsOldPrefetches)
{
    ApdUnit apd(config_, tracker_);
    setAccuracy(0.95); // threshold 100000
    Request r = prefetchAged(50000);
    EXPECT_FALSE(apd.shouldDrop(r, now_));
    r = prefetchAged(100200);
    EXPECT_TRUE(apd.shouldDrop(r, now_));
}

/** Property: dropping decision is monotonic in age. */
class DropMonotonicity : public ::testing::TestWithParam<double>
{
};

TEST_P(DropMonotonicity, OlderNeverLessDroppable)
{
    SchedulerConfig config;
    AccuracyConfig ac;
    ac.interval = 100;
    ac.min_samples = 1;
    config.accuracy = ac;
    AccuracyTracker tracker(1, ac);
    for (int i = 0; i < 100; ++i)
        tracker.onPrefetchSent(0);
    for (int i = 0; i < static_cast<int>(GetParam() * 100); ++i)
        tracker.onPrefetchUsed(0);
    tracker.tick(100);

    ApdUnit apd(config, tracker);
    bool dropped_before = false;
    for (Cycle age = 0; age <= 200000; age += 500) {
        Request r;
        r.core = 0;
        r.cls = RequestClass::Prefetch;
        r.arrival = 0;
        const bool drop = apd.shouldDrop(r, age);
        if (dropped_before)
            ASSERT_TRUE(drop) << "non-monotonic at age " << age;
        dropped_before = drop;
    }
    EXPECT_TRUE(dropped_before); // every band drops by 200K cycles
}

INSTANTIATE_TEST_SUITE_P(AccuracyLevels, DropMonotonicity,
                         ::testing::Values(0.0, 0.15, 0.5, 0.95));

} // namespace
} // namespace padc::memctrl
