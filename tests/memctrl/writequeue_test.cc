/**
 * @file
 * Focused tests for the controller's writeback path: drain watermarks,
 * write scheduling order, and read/write interleaving behaviour.
 */

#include <gtest/gtest.h>

#include "dram/address_map.hh"
#include "dram/channel.hh"
#include "memctrl/controller.hh"

namespace padc::memctrl
{
namespace
{

class NullHandler : public ResponseHandler
{
  public:
    void
    dramReadComplete(const Request &, Cycle now) override
    {
        last_read_done = now;
        ++reads_done;
    }

    void
    dramPrefetchDropped(const Request &, Cycle) override
    {
    }

    Cycle last_read_done = 0;
    std::size_t reads_done = 0;
};

class WriteQueueTest : public ::testing::Test
{
  protected:
    WriteQueueTest()
        : channel_(timing_, 8), map_(geometry_), tracker_(1, acc_)
    {
    }

    Addr
    addrFor(std::uint32_t bank, std::uint64_t row, std::uint32_t col = 0)
    {
        dram::DramCoord c;
        c.bank = bank;
        c.row = row;
        c.col = col;
        return map_.unmap(c);
    }

    void
    enqueueWrites(MemoryController &ctrl, std::uint32_t count)
    {
        for (std::uint32_t i = 0; i < count; ++i) {
            const Addr a = addrFor(i % 8, 1 + i / 8, i % 64);
            ctrl.enqueueWrite(map_.map(a), lineAlign(a), 0, 0);
        }
    }

    dram::TimingParams timing_;
    dram::Geometry geometry_;
    dram::Channel channel_;
    dram::AddressMap map_;
    AccuracyConfig acc_;
    AccuracyTracker tracker_;
    NullHandler handler_;
};

TEST_F(WriteQueueTest, WritesWaitWhileReadsPending)
{
    SchedulerConfig cfg;
    cfg.write_drain_high = 1000; // never force-drain
    MemoryController ctrl(cfg, channel_, tracker_, handler_, 1);

    // A steady supply of reads to one bank; writes to another.
    enqueueWrites(ctrl, 4);
    for (std::uint32_t col = 0; col < 16; ++col) {
        const Addr a = addrFor(0, 9, col);
        ASSERT_TRUE(ctrl.enqueueRead(map_.map(a), lineAlign(a), 0, 0,
                                     RequestClass::DemandRead, 0));
    }
    Cycle t = 0;
    while (handler_.reads_done < 16 && t < 100000)
        ctrl.tick(t++);
    ASSERT_EQ(handler_.reads_done, 16u);
    // No write was serviced before the last read completed (reads had
    // strict priority since the queue stayed below the watermark).
    EXPECT_EQ(ctrl.stats().writes, 0u);
    // Once idle, writes drain.
    for (Cycle end = t + 20000; t < end && ctrl.writeQueueSize() > 0; ++t)
        ctrl.tick(t);
    EXPECT_EQ(ctrl.stats().writes, 4u);
}

TEST_F(WriteQueueTest, HighWatermarkForcesDrain)
{
    SchedulerConfig cfg;
    cfg.write_drain_high = 8;
    cfg.write_drain_low = 2;
    MemoryController ctrl(cfg, channel_, tracker_, handler_, 1);

    enqueueWrites(ctrl, 12); // above the high watermark
    // Keep a read stream alive the whole time.
    std::uint32_t next_col = 0;
    Cycle t = 0;
    for (; t < 60000; ++t) {
        if (t % 500 == 0 && next_col < 64) {
            const Addr a = addrFor(0, 9, next_col++);
            if (!ctrl.hasRead(lineAlign(a)))
                ctrl.enqueueRead(map_.map(a), lineAlign(a), 0, 0,
                                 RequestClass::DemandRead, t);
        }
        ctrl.tick(t);
        if (ctrl.writeQueueSize() <= cfg.write_drain_low)
            break;
    }
    // Despite pending reads, the drain mode pushed writes through until
    // the low watermark.
    EXPECT_LE(ctrl.writeQueueSize(), cfg.write_drain_low);
    EXPECT_GE(ctrl.stats().writes, 10u);
}

TEST_F(WriteQueueTest, WritesPreferRowHitsAmongThemselves)
{
    SchedulerConfig cfg;
    MemoryController ctrl(cfg, channel_, tracker_, handler_, 1);
    // Open row 5 in bank 0 via a read.
    const Addr warm = addrFor(0, 5, 0);
    ASSERT_TRUE(
        ctrl.enqueueRead(map_.map(warm), lineAlign(warm), 0, 0,
                         RequestClass::DemandRead, 0));
    Cycle t = 0;
    while (handler_.reads_done < 1 && t < 50000)
        ctrl.tick(t++);

    // Older conflicting write vs younger row-hit write to the same bank.
    const Addr conflict = addrFor(0, 6, 0);
    const Addr hit = addrFor(0, 5, 1);
    ctrl.enqueueWrite(map_.map(conflict), lineAlign(conflict), 0, t);
    ctrl.enqueueWrite(map_.map(hit), lineAlign(hit), 0, t);
    // Drain; the row-hit write must retire first (stats.writes counts
    // at column issue, so catch the instant one is serviced).
    while (ctrl.stats().writes == 0 && t < 100000)
        ctrl.tick(t++);
    ASSERT_EQ(ctrl.stats().writes, 1u);
    // The open row is unchanged => the first serviced write was the hit.
    EXPECT_EQ(channel_.openRow(0), 5u);
}

TEST_F(WriteQueueTest, ForwardedReadCompletesQuickly)
{
    SchedulerConfig cfg;
    MemoryController ctrl(cfg, channel_, tracker_, handler_, 1);
    const Addr a = addrFor(2, 7, 3);
    ctrl.enqueueWrite(map_.map(a), lineAlign(a), 0, 0);
    ASSERT_TRUE(
        ctrl.enqueueRead(map_.map(a), lineAlign(a), 0, 0,
                         RequestClass::DemandRead, 0));
    Cycle t = 0;
    while (handler_.reads_done < 1 && t < 1000)
        ctrl.tick(t++);
    ASSERT_EQ(handler_.reads_done, 1u);
    // Forwarding latency is tCL, far below any DRAM access.
    EXPECT_LE(handler_.last_read_done,
              timing_.toCpu(timing_.tCL) + timing_.cpu_per_dram_cycle);
    EXPECT_EQ(ctrl.stats().forwarded_reads, 1u);
}

TEST_F(WriteQueueTest, OccupancyStatsAdvance)
{
    SchedulerConfig cfg;
    MemoryController ctrl(cfg, channel_, tracker_, handler_, 1);
    const Addr a = addrFor(0, 1, 0);
    ASSERT_TRUE(
        ctrl.enqueueRead(map_.map(a), lineAlign(a), 0, 0,
                         RequestClass::DemandRead, 0));
    for (Cycle t = 0; t < 600; ++t)
        ctrl.tick(t);
    EXPECT_GT(ctrl.stats().dram_cycles, 0u);
    EXPECT_GT(ctrl.stats().read_queue_occupancy_sum, 0u);
}

} // namespace
} // namespace padc::memctrl
