/**
 * @file
 * Integration tests for the MemoryController driving a real Channel:
 * completion plumbing, policy-driven service order, promotion,
 * write-queue forwarding, APD drops, and buffer back-pressure.
 */

#include <gtest/gtest.h>

#include <vector>

#include "dram/address_map.hh"
#include "dram/channel.hh"
#include "memctrl/controller.hh"

namespace padc::memctrl
{
namespace
{

/** Records completions and drops in arrival order. */
class RecordingHandler : public ResponseHandler
{
  public:
    struct Event
    {
        Addr line;
        bool was_prefetch;
        bool still_prefetch;
        Cycle at;
        Request::RowOutcome outcome;
    };

    void
    dramReadComplete(const Request &req, Cycle now) override
    {
        completions.push_back({req.line_addr, req.was_prefetch,
                               req.isPrefetch(), now, req.row_outcome});
    }

    void
    dramPrefetchDropped(const Request &req, Cycle now) override
    {
        drops.push_back({req.line_addr, req.was_prefetch,
                         req.isPrefetch(), now, req.row_outcome});
    }

    std::vector<Event> completions;
    std::vector<Event> drops;
};

class ControllerTest : public ::testing::Test
{
  protected:
    ControllerTest()
        : channel_(timing_, 8), map_(geometry_),
          tracker_(2, accuracyConfig())
    {
    }

    static AccuracyConfig
    accuracyConfig()
    {
        AccuracyConfig c;
        c.interval = 1000000; // effectively static during a test
        c.initial_accuracy = 1.0;
        return c;
    }

    MemoryController
    makeController(const SchedulerConfig &config)
    {
        return MemoryController(config, channel_, tracker_, handler_, 2);
    }

    /** Address of line (bank, row, col) via the inverse map. */
    Addr
    addrFor(std::uint32_t bank, std::uint64_t row, std::uint32_t col = 0)
    {
        dram::DramCoord coord;
        coord.channel = 0;
        coord.bank = bank;
        coord.row = row;
        coord.col = col;
        return map_.unmap(coord);
    }

    bool
    enqueue(MemoryController &ctrl, Addr addr, bool prefetch, Cycle now,
            CoreId core = 0)
    {
        return ctrl.enqueueRead(map_.map(addr), lineAlign(addr), core,
                                0x400,
                                prefetch ? RequestClass::Prefetch
                                         : RequestClass::DemandRead,
                                now);
    }

    /**
     * Tick the controller forward (time never rewinds across calls)
     * until @p completions have been observed or @p cycles more cycles
     * elapse.
     */
    void
    runUntil(MemoryController &ctrl, Cycle cycles,
             std::size_t completions)
    {
        const Cycle end = now_ + cycles;
        for (; now_ <= end; ++now_) {
            ctrl.tick(now_);
            if (handler_.completions.size() >= completions) {
                ++now_;
                return;
            }
        }
    }

    Cycle now_ = 0;

    dram::TimingParams timing_;
    dram::Geometry geometry_;
    dram::Channel channel_;
    dram::AddressMap map_;
    AccuracyTracker tracker_;
    RecordingHandler handler_;
};

TEST_F(ControllerTest, SingleReadCompletes)
{
    SchedulerConfig cfg;
    auto ctrl = makeController(cfg);
    const Addr a = addrFor(0, 5);
    ASSERT_TRUE(enqueue(ctrl, a, false, 0));
    EXPECT_TRUE(ctrl.hasRead(lineAlign(a)));
    runUntil(ctrl, 10000, 1);
    ASSERT_EQ(handler_.completions.size(), 1u);
    EXPECT_EQ(handler_.completions[0].line, lineAlign(a));
    // Bank was closed: ACT + RD, no precharge -> Closed outcome.
    EXPECT_EQ(handler_.completions[0].outcome,
              Request::RowOutcome::Closed);
    EXPECT_FALSE(ctrl.hasRead(lineAlign(a)));
    EXPECT_EQ(ctrl.stats().demand_reads, 1u);
}

TEST_F(ControllerTest, RowHitServedBeforeOlderConflict)
{
    // FR-FCFS: open row 1 in bank 0 by completing a first request, then
    // enqueue an older conflict (row 2) and a younger hit (row 1).
    SchedulerConfig cfg;
    cfg.kind = SchedPolicyKind::FrFcfs;
    auto ctrl = makeController(cfg);
    ASSERT_TRUE(enqueue(ctrl, addrFor(0, 1, 0), false, 0));
    runUntil(ctrl, 10000, 1);
    ASSERT_EQ(handler_.completions.size(), 1u);
    const Cycle t0 = handler_.completions[0].at;

    ASSERT_TRUE(enqueue(ctrl, addrFor(0, 2, 0), false, t0));     // conflict
    ASSERT_TRUE(enqueue(ctrl, addrFor(0, 1, 1), false, t0 + 1)); // hit
    runUntil(ctrl, t0 + 20000, 3);
    ASSERT_EQ(handler_.completions.size(), 3u);
    EXPECT_EQ(handler_.completions[1].line, lineAlign(addrFor(0, 1, 1)));
    EXPECT_EQ(handler_.completions[1].outcome, Request::RowOutcome::Hit);
    EXPECT_EQ(handler_.completions[2].line, lineAlign(addrFor(0, 2, 0)));
    EXPECT_EQ(handler_.completions[2].outcome,
              Request::RowOutcome::Conflict);
}

TEST_F(ControllerTest, DemandFirstPrefersConflictDemandOverHitPrefetch)
{
    SchedulerConfig cfg;
    cfg.kind = SchedPolicyKind::DemandFirst;
    auto ctrl = makeController(cfg);
    ASSERT_TRUE(enqueue(ctrl, addrFor(0, 1, 0), false, 0));
    runUntil(ctrl, 10000, 1);
    const Cycle t0 = handler_.completions[0].at;

    // Older row-hit prefetch vs younger row-conflict demand.
    ASSERT_TRUE(enqueue(ctrl, addrFor(0, 1, 1), true, t0));
    ASSERT_TRUE(enqueue(ctrl, addrFor(0, 2, 0), false, t0 + 1));
    runUntil(ctrl, t0 + 30000, 3);
    ASSERT_EQ(handler_.completions.size(), 3u);
    EXPECT_EQ(handler_.completions[1].line, lineAlign(addrFor(0, 2, 0)));
    EXPECT_FALSE(handler_.completions[1].was_prefetch);
}

TEST_F(ControllerTest, PromotionClearsPrefetchBit)
{
    SchedulerConfig cfg;
    cfg.kind = SchedPolicyKind::DemandFirst;
    auto ctrl = makeController(cfg);
    const Addr a = addrFor(3, 9);
    ASSERT_TRUE(enqueue(ctrl, a, true, 0));
    EXPECT_TRUE(ctrl.promote(lineAlign(a), 0));
    EXPECT_FALSE(ctrl.promote(lineAlign(a), 0)); // already a demand
    runUntil(ctrl, 10000, 1);
    ASSERT_EQ(handler_.completions.size(), 1u);
    EXPECT_TRUE(handler_.completions[0].was_prefetch);
    EXPECT_FALSE(handler_.completions[0].still_prefetch);
    EXPECT_EQ(ctrl.stats().promotions, 1u);
    // Promoted prefetches are serviced (and counted) as demands.
    EXPECT_EQ(ctrl.stats().demand_reads, 1u);
    EXPECT_EQ(ctrl.stats().prefetch_reads, 0u);
}

TEST_F(ControllerTest, PromoteUnknownLineReturnsFalse)
{
    SchedulerConfig cfg;
    auto ctrl = makeController(cfg);
    EXPECT_FALSE(ctrl.promote(0x123440, 0));
}

TEST_F(ControllerTest, ReadForwardedFromWriteQueue)
{
    SchedulerConfig cfg;
    auto ctrl = makeController(cfg);
    const Addr a = addrFor(1, 4);
    ctrl.enqueueWrite(map_.map(a), lineAlign(a), 0, 0);
    ASSERT_TRUE(enqueue(ctrl, a, false, 0));
    runUntil(ctrl, 1000, 1);
    ASSERT_EQ(handler_.completions.size(), 1u);
    EXPECT_EQ(ctrl.stats().forwarded_reads, 1u);
    // Forwarded reads never touch the DRAM read path.
    EXPECT_EQ(ctrl.stats().demand_reads, 0u);
}

TEST_F(ControllerTest, WriteCoalescing)
{
    SchedulerConfig cfg;
    auto ctrl = makeController(cfg);
    const Addr a = addrFor(1, 4);
    ctrl.enqueueWrite(map_.map(a), lineAlign(a), 0, 0);
    ctrl.enqueueWrite(map_.map(a), lineAlign(a), 0, 5);
    EXPECT_EQ(ctrl.writeQueueSize(), 1u);
}

TEST_F(ControllerTest, WritesDrainWhenIdle)
{
    SchedulerConfig cfg;
    auto ctrl = makeController(cfg);
    for (std::uint32_t i = 0; i < 4; ++i) {
        const Addr a = addrFor(i, 2);
        ctrl.enqueueWrite(map_.map(a), lineAlign(a), 0, 0);
    }
    for (Cycle t = 0; t < 5000; ++t)
        ctrl.tick(t);
    EXPECT_EQ(ctrl.writeQueueSize(), 0u);
    EXPECT_EQ(ctrl.stats().writes, 4u);
}

TEST_F(ControllerTest, ApdDropsStalePrefetch)
{
    SchedulerConfig cfg;
    cfg.kind = SchedPolicyKind::Aps;
    cfg.apd_enabled = true;
    auto ctrl = makeController(cfg);

    // Make core 0 inaccurate: threshold becomes 100 cycles.
    AccuracyConfig ac;
    ac.interval = 10;
    ac.min_samples = 1;
    AccuracyTracker bad_tracker(2, ac);
    for (int i = 0; i < 10; ++i)
        bad_tracker.onPrefetchSent(0);
    bad_tracker.tick(10);
    MemoryController ctrl2(cfg, channel_, bad_tracker, handler_, 2);

    // Fill the bank with older demands so the prefetch cannot issue,
    // then let it age past the 100-cycle drop threshold.
    for (std::uint32_t col = 0; col < 8; ++col) {
        ASSERT_TRUE(ctrl2.enqueueRead(map_.map(addrFor(0, 1, col)),
                                      lineAlign(addrFor(0, 1, col)), 1,
                                      0, RequestClass::DemandRead, 0));
    }
    const Addr pf = addrFor(0, 2, 0);
    ASSERT_TRUE(ctrl2.enqueueRead(map_.map(pf), lineAlign(pf), 0, 0,
                                  RequestClass::Prefetch, 0));
    for (Cycle t = 0; t < 5000; ++t)
        ctrl2.tick(t);
    ASSERT_EQ(handler_.drops.size(), 1u);
    EXPECT_EQ(handler_.drops[0].line, lineAlign(pf));
    EXPECT_EQ(ctrl2.stats().prefetches_dropped, 1u);
}

TEST_F(ControllerTest, BufferFullRejectsAndCounts)
{
    SchedulerConfig cfg;
    cfg.request_buffer_size = 4;
    auto ctrl = makeController(cfg);
    for (std::uint32_t i = 0; i < 4; ++i)
        ASSERT_TRUE(enqueue(ctrl, addrFor(0, 1, i), false, 0));
    EXPECT_TRUE(ctrl.readBufferFull());
    EXPECT_FALSE(enqueue(ctrl, addrFor(0, 1, 5), true, 0));
    EXPECT_FALSE(enqueue(ctrl, addrFor(0, 1, 6), false, 0));
    EXPECT_EQ(ctrl.stats().prefetches_rejected_full, 1u);
    EXPECT_EQ(ctrl.stats().demands_rejected_full, 1u);
}

TEST_F(ControllerTest, PrefetchSentCountsTowardPsc)
{
    SchedulerConfig cfg;
    auto ctrl = makeController(cfg);
    EXPECT_EQ(tracker_.totalSent(0), 0u);
    ASSERT_TRUE(enqueue(ctrl, addrFor(0, 1, 0), true, 0));
    EXPECT_EQ(tracker_.totalSent(0), 1u);
    ASSERT_TRUE(enqueue(ctrl, addrFor(0, 1, 1), false, 0));
    EXPECT_EQ(tracker_.totalSent(0), 1u); // demands don't count
}

TEST_F(ControllerTest, ClosedRowPolicyAutoPrecharges)
{
    SchedulerConfig cfg;
    cfg.row_policy = RowPolicy::Closed;
    auto ctrl = makeController(cfg);
    ASSERT_TRUE(enqueue(ctrl, addrFor(0, 7, 0), false, 0));
    runUntil(ctrl, 10000, 1);
    ASSERT_EQ(handler_.completions.size(), 1u);
    // No same-row request remained, so the row must have been closed.
    EXPECT_EQ(channel_.openRow(0), dram::kNoOpenRow);
}

TEST_F(ControllerTest, OpenRowPolicyKeepsRowOpen)
{
    SchedulerConfig cfg;
    cfg.row_policy = RowPolicy::Open;
    auto ctrl = makeController(cfg);
    ASSERT_TRUE(enqueue(ctrl, addrFor(0, 7, 0), false, 0));
    runUntil(ctrl, 10000, 1);
    EXPECT_EQ(channel_.openRow(0), 7u);
}

TEST_F(ControllerTest, PromotionPreventsDrop)
{
    // A demand-matched (promoted) prefetch must never be dropped by APD
    // no matter how long it lingers.
    SchedulerConfig cfg;
    cfg.kind = SchedPolicyKind::Aps;
    cfg.apd_enabled = true;

    AccuracyConfig ac;
    ac.interval = 10;
    ac.min_samples = 1;
    AccuracyTracker bad_tracker(2, ac);
    for (int i = 0; i < 10; ++i)
        bad_tracker.onPrefetchSent(0);
    bad_tracker.tick(10);
    MemoryController ctrl(cfg, channel_, bad_tracker, handler_, 2);

    // Keep the bank permanently contended with another core's demands.
    for (std::uint32_t col = 0; col < 8; ++col) {
        ASSERT_TRUE(ctrl.enqueueRead(map_.map(addrFor(0, 1, col)),
                                     lineAlign(addrFor(0, 1, col)), 1, 0,
                                     RequestClass::DemandRead, 0));
    }
    const Addr pf = addrFor(0, 2, 0);
    ASSERT_TRUE(ctrl.enqueueRead(map_.map(pf), lineAlign(pf), 0, 0,
                                 RequestClass::Prefetch, 0));
    ASSERT_TRUE(ctrl.promote(lineAlign(pf), 1));
    for (Cycle t = 0; t < 20000; ++t)
        ctrl.tick(t);
    EXPECT_TRUE(handler_.drops.empty());
    // The promoted request was eventually serviced as a demand.
    bool found = false;
    for (const auto &done : handler_.completions)
        found = found || done.line == lineAlign(pf);
    EXPECT_TRUE(found);
}

TEST_F(ControllerTest, StrictClassBlockingHoldsPrefetchBack)
{
    // Under demand-first, a prefetch to a bank may not issue while a
    // demand to the same bank is queued -- even when the demand is not
    // timing-ready and the prefetch is (paper Section 1's definition).
    SchedulerConfig cfg;
    cfg.kind = SchedPolicyKind::DemandFirst;
    auto ctrl = makeController(cfg);
    ASSERT_TRUE(enqueue(ctrl, addrFor(0, 1, 0), false, 0));
    runUntil(ctrl, 10000, 1);

    // Row 1 open. Prefetch row-hit + conflicting demand, same bank.
    ASSERT_TRUE(enqueue(ctrl, addrFor(0, 1, 1), true, now_));
    ASSERT_TRUE(enqueue(ctrl, addrFor(0, 2, 0), false, now_));
    runUntil(ctrl, 30000, 3);
    ASSERT_EQ(handler_.completions.size(), 3u);
    EXPECT_EQ(handler_.completions[1].line, lineAlign(addrFor(0, 2, 0)));
    // The prefetch was serviced only afterwards -- as a row conflict.
    EXPECT_EQ(handler_.completions[2].line, lineAlign(addrFor(0, 1, 1)));
    EXPECT_EQ(handler_.completions[2].outcome,
              Request::RowOutcome::Conflict);
}

TEST_F(ControllerTest, ClassBlockingIsPerBank)
{
    // A prefetch to a *different* bank proceeds while a demand waits on
    // its own bank.
    SchedulerConfig cfg;
    cfg.kind = SchedPolicyKind::DemandFirst;
    auto ctrl = makeController(cfg);
    ASSERT_TRUE(enqueue(ctrl, addrFor(0, 1, 0), false, 0));
    ASSERT_TRUE(enqueue(ctrl, addrFor(1, 5, 0), true, 0));
    runUntil(ctrl, 10000, 2);
    ASSERT_EQ(handler_.completions.size(), 2u);
    // Both complete close together: the prefetch was not serialized
    // behind the other bank's demand by more than pipeline effects.
    const Cycle gap = handler_.completions[1].at -
                      handler_.completions[0].at;
    EXPECT_LT(gap, 60u);
}

TEST_F(ControllerTest, ServiceTimeAccountedInStats)
{
    SchedulerConfig cfg;
    auto ctrl = makeController(cfg);
    ASSERT_TRUE(enqueue(ctrl, addrFor(0, 1, 0), false, 0));
    runUntil(ctrl, 10000, 1);
    const Cycle at = handler_.completions[0].at;
    EXPECT_EQ(ctrl.stats().read_service_cycles_sum, at);
}

} // namespace
} // namespace padc::memctrl
