/**
 * @file
 * Unit tests for the scheduling-policy priority keys: the C > RH > U >
 * RANK > FCFS ordering of APS (paper Rules 1 and 2) and the rigid
 * baselines.
 */

#include <gtest/gtest.h>

#include "memctrl/policy.hh"

namespace padc::memctrl
{
namespace
{

/** Test fixture with a 2-core tracker whose accuracies we can program. */
class PolicyTest : public ::testing::Test
{
  protected:
    PolicyTest() : tracker_(2, trackerConfig()) {}

    static AccuracyConfig
    trackerConfig()
    {
        AccuracyConfig c;
        c.interval = 100;
        c.min_samples = 1;
        return c;
    }

    /** Force core accuracies by synthesizing one interval of events. */
    void
    setAccuracy(CoreId core, double accuracy)
    {
        for (int i = 0; i < 100; ++i)
            tracker_.onPrefetchSent(core);
        for (int i = 0; i < static_cast<int>(accuracy * 100); ++i)
            tracker_.onPrefetchUsed(core);
        programmed_ = true;
    }

    void
    finishInterval()
    {
        ASSERT_TRUE(programmed_);
        tracker_.tick(boundary_);
        boundary_ += 100;
    }

    Request
    request(CoreId core, bool prefetch, std::uint64_t seq)
    {
        Request r;
        r.core = core;
        r.cls = prefetch ? RequestClass::Prefetch
                         : RequestClass::DemandRead;
        r.was_prefetch = prefetch;
        r.seq = seq;
        return r;
    }

    SchedulerConfig config_;
    AccuracyTracker tracker_;
    Cycle boundary_ = 100;
    bool programmed_ = false;
};

TEST_F(PolicyTest, FrFcfsRowHitBeatsAge)
{
    config_.kind = SchedPolicyKind::FrFcfs;
    SchedContext ctx(config_, tracker_);
    const Request old_conflict = request(0, false, 1);
    const Request young_hit = request(0, true, 2);
    EXPECT_GT(ctx.priorityKey(young_hit, true),
              ctx.priorityKey(old_conflict, false));
}

TEST_F(PolicyTest, FrFcfsIsPrefetchBlind)
{
    config_.kind = SchedPolicyKind::FrFcfs;
    SchedContext ctx(config_, tracker_);
    const Request demand = request(0, false, 5);
    const Request prefetch = request(0, true, 5);
    EXPECT_EQ(ctx.priorityKey(demand, true),
              ctx.priorityKey(prefetch, true));
}

TEST_F(PolicyTest, FrFcfsOlderWinsAmongEqual)
{
    config_.kind = SchedPolicyKind::FrFcfs;
    SchedContext ctx(config_, tracker_);
    EXPECT_GT(ctx.priorityKey(request(0, false, 1), true),
              ctx.priorityKey(request(0, false, 2), true));
}

TEST_F(PolicyTest, DemandFirstDemandBeatsRowHitPrefetch)
{
    config_.kind = SchedPolicyKind::DemandFirst;
    SchedContext ctx(config_, tracker_);
    const Request conflict_demand = request(0, false, 9);
    const Request hit_prefetch = request(0, true, 1);
    EXPECT_GT(ctx.priorityKey(conflict_demand, false),
              ctx.priorityKey(hit_prefetch, true));
}

TEST_F(PolicyTest, DemandFirstUsesRowHitWithinClass)
{
    config_.kind = SchedPolicyKind::DemandFirst;
    SchedContext ctx(config_, tracker_);
    EXPECT_GT(ctx.priorityKey(request(0, true, 9), true),
              ctx.priorityKey(request(0, true, 1), false));
}

TEST_F(PolicyTest, PrefetchFirstInverts)
{
    config_.kind = SchedPolicyKind::PrefetchFirst;
    SchedContext ctx(config_, tracker_);
    EXPECT_GT(ctx.priorityKey(request(0, true, 9), false),
              ctx.priorityKey(request(0, false, 1), true));
}

TEST_F(PolicyTest, ApsAccurateCorePrefetchIsCritical)
{
    config_.kind = SchedPolicyKind::Aps;
    config_.promotion_threshold = 0.85;
    setAccuracy(0, 0.90);
    setAccuracy(1, 0.10);
    finishInterval();
    SchedContext ctx(config_, tracker_);

    EXPECT_TRUE(ctx.coreAccurate(0));
    EXPECT_FALSE(ctx.coreAccurate(1));
    EXPECT_TRUE(ctx.isCritical(request(0, true, 1)));
    EXPECT_FALSE(ctx.isCritical(request(1, true, 1)));
    EXPECT_TRUE(ctx.isCritical(request(1, false, 1)));

    // Accurate-core prefetch (row-hit) beats inaccurate-core prefetch.
    EXPECT_GT(ctx.priorityKey(request(0, true, 9), false),
              ctx.priorityKey(request(1, true, 1), true));
}

TEST_F(PolicyTest, ApsUrgencyBoostsLowAccuracyDemands)
{
    config_.kind = SchedPolicyKind::Aps;
    setAccuracy(0, 0.95); // accurate core
    setAccuracy(1, 0.10); // inaccurate core
    finishInterval();
    SchedContext ctx(config_, tracker_);

    // Same row-hit status: the inaccurate core's demand is urgent and
    // wins over the accurate core's (critical) demand and prefetch.
    EXPECT_GT(ctx.priorityKey(request(1, false, 9), true),
              ctx.priorityKey(request(0, false, 1), true));
    EXPECT_GT(ctx.priorityKey(request(1, false, 9), true),
              ctx.priorityKey(request(0, true, 1), true));
    // But urgency is below the row-hit level (Rule 1 order).
    EXPECT_LT(ctx.priorityKey(request(1, false, 9), false),
              ctx.priorityKey(request(0, false, 1), true));
}

TEST_F(PolicyTest, ApsUrgencyCanBeDisabled)
{
    config_.kind = SchedPolicyKind::Aps;
    config_.urgency_enabled = false;
    setAccuracy(0, 0.95);
    setAccuracy(1, 0.10);
    finishInterval();
    SchedContext ctx(config_, tracker_);
    // Without urgency, FCFS decides between equal-class row-hits.
    EXPECT_LT(ctx.priorityKey(request(1, false, 9), true),
              ctx.priorityKey(request(0, false, 1), true));
}

TEST_F(PolicyTest, RankingPrefersFewerCriticalRequests)
{
    config_.kind = SchedPolicyKind::Aps;
    config_.ranking_enabled = true;
    setAccuracy(0, 0.0);
    setAccuracy(1, 0.0);
    finishInterval();
    SchedContext ctx(config_, tracker_);

    std::array<std::uint32_t, kMaxCores> counts{};
    counts[0] = 30; // long job
    counts[1] = 2;  // short job -> higher rank
    ctx.updateRanks(counts, 2);

    // Both demands, both row-hits, core 0 older: rank must win over FCFS.
    EXPECT_GT(ctx.priorityKey(request(1, false, 9), true),
              ctx.priorityKey(request(0, false, 1), true));
}

TEST_F(PolicyTest, RankingDoesNotApplyToNonCritical)
{
    config_.kind = SchedPolicyKind::Aps;
    config_.ranking_enabled = true;
    setAccuracy(0, 0.0);
    setAccuracy(1, 0.0);
    finishInterval();
    SchedContext ctx(config_, tracker_);

    std::array<std::uint32_t, kMaxCores> counts{};
    counts[0] = 0;
    counts[1] = 50;
    ctx.updateRanks(counts, 2);

    // Non-critical prefetches are unranked (footnote 12): FCFS decides.
    EXPECT_GT(ctx.priorityKey(request(1, true, 1), true),
              ctx.priorityKey(request(0, true, 9), true));
}

TEST_F(PolicyTest, CriticalityDominatesEverything)
{
    config_.kind = SchedPolicyKind::Aps;
    config_.ranking_enabled = true;
    setAccuracy(0, 0.0);
    setAccuracy(1, 0.0);
    finishInterval();
    SchedContext ctx(config_, tracker_);

    std::array<std::uint32_t, kMaxCores> counts{};
    ctx.updateRanks(counts, 2);

    // A row-conflict demand outranks a row-hit non-critical prefetch.
    EXPECT_GT(ctx.priorityKey(request(0, false, 9), false),
              ctx.priorityKey(request(1, true, 1), true));
}

TEST_F(PolicyTest, KeyIsTotalOrderOnSeq)
{
    config_.kind = SchedPolicyKind::Aps;
    SchedContext ctx(config_, tracker_);
    std::uint64_t prev = ctx.priorityKey(request(0, false, 0), false);
    for (std::uint64_t seq = 1; seq < 100; ++seq) {
        const std::uint64_t key =
            ctx.priorityKey(request(0, false, seq), false);
        EXPECT_LT(key, prev);
        prev = key;
    }
}

} // namespace
} // namespace padc::memctrl
