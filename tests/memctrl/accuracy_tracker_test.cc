/**
 * @file
 * Unit tests for the per-core prefetch accuracy tracker (PSC/PUC/PAR),
 * including the drop-decrement robustness addition.
 */

#include <gtest/gtest.h>

#include "memctrl/accuracy_tracker.hh"

namespace padc::memctrl
{
namespace
{

AccuracyConfig
config(Cycle interval = 1000, double initial = 1.0,
       std::uint32_t min_samples = 1)
{
    AccuracyConfig c;
    c.interval = interval;
    c.initial_accuracy = initial;
    c.min_samples = min_samples;
    return c;
}

TEST(AccuracyTrackerTest, InitialAccuracy)
{
    AccuracyTracker t(2, config(1000, 0.5));
    EXPECT_DOUBLE_EQ(t.accuracy(0), 0.5);
    EXPECT_DOUBLE_EQ(t.accuracy(1), 0.5);
}

TEST(AccuracyTrackerTest, ParUpdatesAtIntervalBoundary)
{
    AccuracyTracker t(1, config());
    for (int i = 0; i < 10; ++i)
        t.onPrefetchSent(0);
    for (int i = 0; i < 4; ++i)
        t.onPrefetchUsed(0);
    t.tick(999);
    EXPECT_DOUBLE_EQ(t.accuracy(0), 1.0); // not yet
    t.tick(1000);
    EXPECT_DOUBLE_EQ(t.accuracy(0), 0.4);
}

TEST(AccuracyTrackerTest, CountersResetEachInterval)
{
    AccuracyTracker t(1, config());
    for (int i = 0; i < 10; ++i)
        t.onPrefetchSent(0);
    t.tick(1000); // PAR = 0.0
    EXPECT_DOUBLE_EQ(t.accuracy(0), 0.0);
    for (int i = 0; i < 4; ++i) {
        t.onPrefetchSent(0);
        t.onPrefetchUsed(0);
    }
    t.tick(2000);
    EXPECT_DOUBLE_EQ(t.accuracy(0), 1.0); // fresh interval: 4/4
}

TEST(AccuracyTrackerTest, MinSamplesKeepsOldEstimate)
{
    AccuracyTracker t(1, config(1000, 1.0, 8));
    for (int i = 0; i < 4; ++i)
        t.onPrefetchSent(0); // below min_samples
    t.tick(1000);
    EXPECT_DOUBLE_EQ(t.accuracy(0), 1.0); // unchanged
    for (int i = 0; i < 8; ++i)
        t.onPrefetchSent(0);
    t.tick(2000);
    EXPECT_DOUBLE_EQ(t.accuracy(0), 0.0); // now measured
}

TEST(AccuracyTrackerTest, ParClampedToOne)
{
    // PUC can outrun PSC when a prefetch sent in the previous interval
    // is used in this one.
    AccuracyTracker t(1, config());
    t.onPrefetchSent(0);
    for (int i = 0; i < 5; ++i)
        t.onPrefetchUsed(0);
    t.tick(1000);
    EXPECT_DOUBLE_EQ(t.accuracy(0), 1.0);
}

TEST(AccuracyTrackerTest, DroppedPrefetchesLeaveIntervalPsc)
{
    // 10 sent, 8 dropped unserviced, 2 used: the interval judges only
    // the prefetches that had a chance -> PAR 1.0, not 0.2.
    AccuracyTracker t(1, config());
    for (int i = 0; i < 10; ++i)
        t.onPrefetchSent(0);
    for (int i = 0; i < 8; ++i)
        t.onPrefetchDropped(0);
    for (int i = 0; i < 2; ++i)
        t.onPrefetchUsed(0);
    t.tick(1000);
    EXPECT_DOUBLE_EQ(t.accuracy(0), 1.0);
    // Lifetime totals keep the paper's definition.
    EXPECT_EQ(t.totalSent(0), 10u);
    EXPECT_EQ(t.totalUsed(0), 2u);
}

TEST(AccuracyTrackerTest, MassDropsAreNotAnAbsorbingState)
{
    // Even if every prefetch of an interval is dropped, the estimate
    // keeps its previous value rather than collapsing to zero.
    AccuracyTracker t(1, config(1000, 0.9));
    for (int i = 0; i < 50; ++i) {
        t.onPrefetchSent(0);
        t.onPrefetchDropped(0);
    }
    t.tick(1000);
    EXPECT_DOUBLE_EQ(t.accuracy(0), 0.9);
}

TEST(AccuracyTrackerTest, DropDecrementSaturatesAtZero)
{
    AccuracyTracker t(1, config());
    t.onPrefetchDropped(0); // no underflow
    t.onPrefetchSent(0);
    t.onPrefetchSent(0);
    t.onPrefetchDropped(0);
    t.onPrefetchUsed(0);
    t.tick(1000);
    EXPECT_DOUBLE_EQ(t.accuracy(0), 1.0); // 1 used / 1 remaining
}

TEST(AccuracyTrackerTest, PerCoreIsolation)
{
    AccuracyTracker t(2, config());
    for (int i = 0; i < 10; ++i)
        t.onPrefetchSent(0);
    for (int i = 0; i < 10; ++i) {
        t.onPrefetchSent(1);
        t.onPrefetchUsed(1);
    }
    t.tick(1000);
    EXPECT_DOUBLE_EQ(t.accuracy(0), 0.0);
    EXPECT_DOUBLE_EQ(t.accuracy(1), 1.0);
}

TEST(AccuracyTrackerTest, LifetimeTotalsMonotonic)
{
    AccuracyTracker t(1, config());
    for (int i = 0; i < 5; ++i)
        t.onPrefetchSent(0);
    t.onPrefetchUsed(0);
    t.tick(1000);
    for (int i = 0; i < 3; ++i)
        t.onPrefetchSent(0);
    EXPECT_EQ(t.totalSent(0), 8u);
    EXPECT_EQ(t.totalUsed(0), 1u);
}

TEST(AccuracyTrackerTest, TickCatchesUpMultipleIntervals)
{
    AccuracyTracker t(1, config());
    for (int i = 0; i < 2; ++i)
        t.onPrefetchSent(0);
    t.tick(5500); // five intervals passed at once
    EXPECT_DOUBLE_EQ(t.accuracy(0), 0.0);
    for (int i = 0; i < 2; ++i) {
        t.onPrefetchSent(0);
        t.onPrefetchUsed(0);
    }
    t.tick(5999);
    EXPECT_DOUBLE_EQ(t.accuracy(0), 0.0);
    t.tick(6000);
    EXPECT_DOUBLE_EQ(t.accuracy(0), 1.0);
}

/** Property: PAR always stays within [0, 1] under random event mixes. */
class AccuracyRangeProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(AccuracyRangeProperty, ParInRange)
{
    AccuracyTracker t(1, config(100));
    std::uint64_t state =
        static_cast<std::uint64_t>(GetParam()) * 2654435761u + 1;
    auto rnd = [&]() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        return state;
    };
    for (Cycle now = 0; now < 10000; now += 10) {
        if (rnd() % 3 == 0)
            t.onPrefetchSent(0);
        if (rnd() % 5 == 0)
            t.onPrefetchUsed(0);
        if (rnd() % 7 == 0)
            t.onPrefetchDropped(0);
        t.tick(now);
        ASSERT_GE(t.accuracy(0), 0.0);
        ASSERT_LE(t.accuracy(0), 1.0);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AccuracyRangeProperty,
                         ::testing::Range(1, 6));

} // namespace
} // namespace padc::memctrl
