/**
 * @file
 * Golden equivalence tests: the bank-sharded incremental scheduler must
 * make exactly the same decision as the naive reference scheduler every
 * cycle, for every policy configuration.
 *
 * Two complete controller stacks (separate Channel, AccuracyTracker and
 * handler) receive an identical randomized stimulus -- enqueues of
 * demands/prefetches/writebacks over a small bank/row space (high
 * conflict rate), promotions, accuracy-moving prefetch-used events and
 * interval ticks -- one configured with reference_scheduler=true, the
 * other with the optimized path. The test then compares the complete
 * DRAM command streams (IssueRecord logs), the completion/drop event
 * sequences, and every statistic.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.hh"
#include "dram/address_map.hh"
#include "dram/channel.hh"
#include "memctrl/controller.hh"

namespace padc::memctrl
{
namespace
{

/** Records completions and drops in arrival order, comparably. */
class LoggingHandler : public ResponseHandler
{
  public:
    struct Event
    {
        Addr line;
        bool drop;
        bool was_prefetch;
        bool still_prefetch;
        Cycle at;

        bool operator==(const Event &other) const = default;
    };

    void
    dramReadComplete(const Request &req, Cycle now) override
    {
        events.push_back({req.line_addr, false, req.was_prefetch,
                          req.isPrefetch(), now});
    }

    void
    dramPrefetchDropped(const Request &req, Cycle now) override
    {
        events.push_back({req.line_addr, true, req.was_prefetch,
                          req.isPrefetch(), now});
    }

    std::vector<Event> events;
};

/** One controller plus everything it owns, for lockstep driving. */
struct Stack
{
    Stack(const SchedulerConfig &config, std::uint32_t num_cores)
        : channel(timing, 8), map(geometry),
          tracker(num_cores, config.accuracy),
          ctrl(config, channel, tracker, handler, num_cores)
    {
        ctrl.setIssueLog(&issues);
    }

    dram::TimingParams timing;
    dram::Geometry geometry;
    dram::Channel channel;
    dram::AddressMap map;
    AccuracyTracker tracker;
    LoggingHandler handler;
    MemoryController ctrl;
    std::vector<MemoryController::IssueRecord> issues;
};

void
expectStatsEqual(const ControllerStats &a, const ControllerStats &b)
{
    EXPECT_EQ(a.demand_reads, b.demand_reads);
    EXPECT_EQ(a.prefetch_reads, b.prefetch_reads);
    EXPECT_EQ(a.writes, b.writes);
    EXPECT_EQ(a.read_row_hits, b.read_row_hits);
    EXPECT_EQ(a.read_row_closed, b.read_row_closed);
    EXPECT_EQ(a.read_row_conflicts, b.read_row_conflicts);
    EXPECT_EQ(a.demand_row_hits, b.demand_row_hits);
    EXPECT_EQ(a.prefetches_dropped, b.prefetches_dropped);
    EXPECT_EQ(a.prefetches_rejected_full, b.prefetches_rejected_full);
    EXPECT_EQ(a.demands_rejected_full, b.demands_rejected_full);
    EXPECT_EQ(a.promotions, b.promotions);
    EXPECT_EQ(a.forwarded_reads, b.forwarded_reads);
    EXPECT_EQ(a.duplicate_reads, b.duplicate_reads);
    EXPECT_EQ(a.read_queue_occupancy_sum, b.read_queue_occupancy_sum);
    EXPECT_EQ(a.dram_cycles, b.dram_cycles);
    EXPECT_EQ(a.read_service_cycles_sum, b.read_service_cycles_sum);
    for (std::size_t c = 0; c < kRequestClassCount; ++c)
        EXPECT_EQ(a.serviced_by_class[c], b.serviced_by_class[c])
            << "serviced count differs for class "
            << toString(static_cast<RequestClass>(c));
}

/**
 * Drive reference and optimized stacks through an identical randomized
 * stimulus and require identical observable behaviour.
 */
void
runEquivalence(SchedulerConfig config, std::uint64_t seed)
{
    constexpr std::uint32_t kCores = 4;
    constexpr Cycle kDriveCycles = 12000;
    constexpr Cycle kDrainCycles = 8000;

    config.request_buffer_size = 24; // small: exercise rejected-full
    config.write_buffer_size = 16;
    config.write_drain_high = 10;
    config.write_drain_low = 3;
    config.accuracy.interval = 1500; // several interval boundaries
    config.accuracy.min_samples = 4;

    SchedulerConfig ref_config = config;
    ref_config.reference_scheduler = true;
    SchedulerConfig opt_config = config;
    opt_config.reference_scheduler = false;

    Stack ref(ref_config, kCores);
    Stack opt(opt_config, kCores);

    Rng rng(seed);
    // Small line pool: 8 banks x few rows, so row conflicts, duplicate
    // enqueues, promotions and write-queue hits all occur.
    auto randomLine = [&] { return lineToAddr(rng.nextBelow(192)); };

    for (Cycle now = 0; now < kDriveCycles; ++now) {
        if (rng.chance(0.30)) {
            const Addr addr = randomLine();
            const auto core = static_cast<CoreId>(rng.nextBelow(kCores));
            const RequestClass cls = rng.chance(0.5)
                                         ? RequestClass::Prefetch
                                         : RequestClass::DemandRead;
            const bool a = ref.ctrl.enqueueRead(ref.map.map(addr),
                                                lineAlign(addr), core,
                                                0x400, cls, now);
            const bool b = opt.ctrl.enqueueRead(opt.map.map(addr),
                                                lineAlign(addr), core,
                                                0x400, cls, now);
            ASSERT_EQ(a, b) << "enqueue disagreement at cycle " << now;
        }
        if (rng.chance(0.05)) {
            const Addr addr = randomLine();
            const auto core = static_cast<CoreId>(rng.nextBelow(kCores));
            ref.ctrl.enqueueWrite(ref.map.map(addr), lineAlign(addr), core,
                                  now);
            opt.ctrl.enqueueWrite(opt.map.map(addr), lineAlign(addr), core,
                                  now);
        }
        if (rng.chance(0.04)) {
            const Addr addr = randomLine();
            const bool a = ref.ctrl.promote(lineAlign(addr), now);
            const bool b = opt.ctrl.promote(lineAlign(addr), now);
            ASSERT_EQ(a, b) << "promotion disagreement at cycle " << now;
        }
        if (rng.chance(0.10)) {
            // Move the accuracy estimate (flips criticality/urgency).
            const auto core = static_cast<CoreId>(rng.nextBelow(kCores));
            ref.tracker.onPrefetchUsed(core);
            opt.tracker.onPrefetchUsed(core);
        }
        ref.tracker.tick(now);
        opt.tracker.tick(now);
        ref.ctrl.tick(now);
        opt.ctrl.tick(now);
        ASSERT_EQ(ref.issues.size(), opt.issues.size())
            << "issue-count divergence at cycle " << now;
    }
    for (Cycle now = kDriveCycles; now < kDriveCycles + kDrainCycles;
         ++now) {
        ref.tracker.tick(now);
        opt.tracker.tick(now);
        ref.ctrl.tick(now);
        opt.ctrl.tick(now);
    }

    EXPECT_GT(ref.issues.size(), 0u) << "stimulus issued no commands";
    ASSERT_EQ(ref.issues.size(), opt.issues.size());
    for (std::size_t i = 0; i < ref.issues.size(); ++i) {
        EXPECT_TRUE(ref.issues[i] == opt.issues[i])
            << "command " << i << " differs: cycle " << ref.issues[i].cycle
            << " vs " << opt.issues[i].cycle << ", bank "
            << ref.issues[i].bank << " vs " << opt.issues[i].bank
            << ", seq " << ref.issues[i].seq << " vs "
            << opt.issues[i].seq;
        if (!(ref.issues[i] == opt.issues[i]))
            break; // one divergence floods everything after it
    }
    ASSERT_EQ(ref.handler.events.size(), opt.handler.events.size());
    for (std::size_t i = 0; i < ref.handler.events.size(); ++i)
        EXPECT_TRUE(ref.handler.events[i] == opt.handler.events[i])
            << "completion/drop event " << i << " differs";
    expectStatsEqual(ref.ctrl.stats(), opt.ctrl.stats());
}

struct Combo
{
    SchedPolicyKind kind;
    bool urgency;
    bool ranking;
    bool apd;
    RowPolicy row;
};

std::string
comboName(const Combo &combo)
{
    std::string name;
    switch (combo.kind) {
      case SchedPolicyKind::FrFcfs: name = "FrFcfs"; break;
      case SchedPolicyKind::DemandFirst: name = "DemandFirst"; break;
      case SchedPolicyKind::PrefetchFirst: name = "PrefetchFirst"; break;
      case SchedPolicyKind::Aps: name = "Aps"; break;
    }
    name += combo.urgency ? "_urg" : "_nourg";
    name += combo.ranking ? "_rank" : "_norank";
    name += combo.apd ? "_apd" : "_noapd";
    name += combo.row == RowPolicy::Closed ? "_closed" : "_open";
    return name;
}

class SchedEquivalence : public ::testing::TestWithParam<Combo>
{
};

TEST_P(SchedEquivalence, DecisionIdentical)
{
    const Combo &combo = GetParam();
    SchedulerConfig config;
    config.kind = combo.kind;
    config.urgency_enabled = combo.urgency;
    config.ranking_enabled = combo.ranking;
    config.apd_enabled = combo.apd;
    config.row_policy = combo.row;
    // Mid-scale threshold so the randomized used-events actually flip
    // cores between accurate and inaccurate during the run.
    config.promotion_threshold = 0.60;

    runEquivalence(config, 0xC0FFEE ^ static_cast<std::uint64_t>(
                                          combo.kind == SchedPolicyKind::Aps
                                              ? 17
                                              : 3));
}

std::vector<Combo>
allCombos()
{
    std::vector<Combo> combos;
    for (const auto kind :
         {SchedPolicyKind::FrFcfs, SchedPolicyKind::DemandFirst,
          SchedPolicyKind::PrefetchFirst, SchedPolicyKind::Aps}) {
        for (const bool urgency : {false, true}) {
            for (const bool ranking : {false, true}) {
                for (const bool apd : {false, true}) {
                    for (const auto row :
                         {RowPolicy::Open, RowPolicy::Closed}) {
                        combos.push_back({kind, urgency, ranking, apd, row});
                    }
                }
            }
        }
    }
    return combos;
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, SchedEquivalence,
                         ::testing::ValuesIn(allCombos()),
                         [](const ::testing::TestParamInfo<Combo> &info) {
                             return comboName(info.param);
                         });

/** Duplicate enqueues are coalesced, not asserted on (satellite fix). */
TEST(DuplicateEnqueue, CoalescesInsteadOfCorrupting)
{
    SchedulerConfig config;
    config.kind = SchedPolicyKind::Aps;
    Stack stack(config, 2);

    const Addr addr = lineToAddr(5);
    EXPECT_TRUE(stack.ctrl.enqueueRead(stack.map.map(addr),
                                       lineAlign(addr), 0, 0x400,
                                       RequestClass::Prefetch, 0));
    EXPECT_EQ(stack.ctrl.readQueueSize(), 1u);
    EXPECT_EQ(stack.ctrl.stats().duplicate_reads, 0u);

    // A duplicate prefetch is absorbed.
    EXPECT_TRUE(stack.ctrl.enqueueRead(stack.map.map(addr),
                                       lineAlign(addr), 0, 0x400,
                                       RequestClass::Prefetch, 1));
    EXPECT_EQ(stack.ctrl.readQueueSize(), 1u);
    EXPECT_EQ(stack.ctrl.stats().duplicate_reads, 1u);

    // A duplicate demand promotes the outstanding prefetch.
    EXPECT_TRUE(stack.ctrl.enqueueRead(stack.map.map(addr),
                                       lineAlign(addr), 0, 0x400,
                                       RequestClass::DemandRead, 2));
    EXPECT_EQ(stack.ctrl.readQueueSize(), 1u);
    EXPECT_EQ(stack.ctrl.stats().duplicate_reads, 2u);
    EXPECT_EQ(stack.ctrl.stats().promotions, 1u);
}

} // namespace
} // namespace padc::memctrl
