/**
 * @file
 * MetricsRegistry unit tests: instrument semantics (counter, gauge,
 * atomic histogram vs the plain shared Histogram), find-or-create
 * stability, and both export formats.
 *
 * The registry is a process-wide singleton, so every test uses its own
 * uniquely named instruments and never asserts on the full export
 * (other tests -- and the library under test -- may have registered
 * instruments of their own).
 */

#include "obs/metrics.hh"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/histogram.hh"
#include "exp/json.hh"

namespace padc
{
namespace
{

using exp::JsonValue;
using exp::parseJson;

TEST(ObsCounterTest, IncrementAndReset)
{
    obs::Counter counter;
    EXPECT_EQ(counter.value(), 0u);
    counter.inc();
    counter.inc(41);
    EXPECT_EQ(counter.value(), 42u);
    counter.reset();
    EXPECT_EQ(counter.value(), 0u);
}

TEST(ObsGaugeTest, SetAddAndNegative)
{
    obs::Gauge gauge;
    gauge.set(5);
    gauge.add(-8);
    EXPECT_EQ(gauge.value(), -3);
    gauge.reset();
    EXPECT_EQ(gauge.value(), 0);
}

TEST(ObsAtomicHistogramTest, SnapshotMatchesPlainHistogram)
{
    // The atomic histogram must agree with the shared implementation
    // it mirrors, bucket for bucket, including overflow and max.
    obs::AtomicHistogram atomic(10, 4);
    Histogram plain(10, 4);
    const std::uint64_t samples[] = {0, 3, 9, 10, 25, 39, 40, 1000};
    for (const std::uint64_t v : samples) {
        atomic.sample(v);
        plain.sample(v);
    }
    const Histogram snap = atomic.snapshot();
    EXPECT_EQ(snap.total(), plain.total());
    EXPECT_DOUBLE_EQ(snap.mean(), plain.mean());
    EXPECT_EQ(snap.max(), plain.max());
    for (const double p : {50.0, 90.0, 99.0})
        EXPECT_DOUBLE_EQ(snap.percentile(p), plain.percentile(p));
}

TEST(ObsAtomicHistogramTest, ConcurrentSamplesAllLand)
{
    obs::AtomicHistogram histogram(100, 8);
    constexpr int kThreads = 4;
    constexpr int kPerThread = 10000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&histogram] {
            for (int i = 0; i < kPerThread; ++i)
                histogram.sample(static_cast<std::uint64_t>(i));
        });
    }
    for (std::thread &thread : threads)
        thread.join();
    const Histogram snap = histogram.snapshot();
    EXPECT_EQ(snap.total(),
              static_cast<std::uint64_t>(kThreads) * kPerThread);
    EXPECT_EQ(snap.max(), static_cast<std::uint64_t>(kPerThread - 1));
}

TEST(ObsRegistryTest, FindOrCreateReturnsStableReference)
{
    obs::MetricsRegistry &registry = obs::MetricsRegistry::instance();
    obs::Counter &first =
        registry.counter("test_stable_total", "first help");
    first.inc(7);
    obs::Counter &second =
        registry.counter("test_stable_total", "ignored help");
    EXPECT_EQ(&first, &second);
    EXPECT_EQ(second.value(), 7u);
}

TEST(ObsRegistryTest, PrometheusTextContainsSeries)
{
    obs::MetricsRegistry &registry = obs::MetricsRegistry::instance();
    registry.counter("test_prom_total", "a test counter").inc(3);
    registry.gauge("test_prom_level", "a test gauge").set(-2);
    obs::AtomicHistogram &histogram =
        registry.histogram("test_prom_ms", 10, 2, "a test histogram");
    histogram.sample(5);
    histogram.sample(15);
    histogram.sample(99);

    const std::string text = registry.prometheusText();
    EXPECT_NE(text.find("# TYPE test_prom_total counter"),
              std::string::npos);
    EXPECT_NE(text.find("# HELP test_prom_total a test counter"),
              std::string::npos);
    EXPECT_NE(text.find("test_prom_total 3"), std::string::npos);
    EXPECT_NE(text.find("# TYPE test_prom_level gauge"),
              std::string::npos);
    EXPECT_NE(text.find("test_prom_level -2"), std::string::npos);
    EXPECT_NE(text.find("# TYPE test_prom_ms histogram"),
              std::string::npos);
    EXPECT_NE(text.find("test_prom_ms_bucket{le=\"10\"} 1"),
              std::string::npos);
    // Cumulative buckets: le="20" includes the le="10" sample.
    EXPECT_NE(text.find("test_prom_ms_bucket{le=\"20\"} 2"),
              std::string::npos);
    EXPECT_NE(text.find("test_prom_ms_bucket{le=\"+Inf\"} 3"),
              std::string::npos);
    EXPECT_NE(text.find("test_prom_ms_count 3"), std::string::npos);
}

TEST(ObsRegistryTest, JsonTextParsesAndCarriesValues)
{
    obs::MetricsRegistry &registry = obs::MetricsRegistry::instance();
    registry.counter("test_json_total").inc(11);
    registry.gauge("test_json_level").set(4);
    registry.histogram("test_json_ms", 10, 2).sample(12);

    JsonValue root;
    std::string error;
    ASSERT_TRUE(parseJson(registry.jsonText(), &root, &error)) << error;
    const JsonValue *schema = root.find("schema");
    ASSERT_NE(schema, nullptr);
    EXPECT_EQ(schema->string, "padc-metrics-v1");

    const JsonValue *counters = root.find("counters");
    ASSERT_NE(counters, nullptr);
    const JsonValue *counter = counters->find("test_json_total");
    ASSERT_NE(counter, nullptr);
    EXPECT_DOUBLE_EQ(counter->number, 11.0);

    const JsonValue *gauges = root.find("gauges");
    ASSERT_NE(gauges, nullptr);
    const JsonValue *gauge = gauges->find("test_json_level");
    ASSERT_NE(gauge, nullptr);
    EXPECT_DOUBLE_EQ(gauge->number, 4.0);

    const JsonValue *histograms = root.find("histograms");
    ASSERT_NE(histograms, nullptr);
    const JsonValue *histogram = histograms->find("test_json_ms");
    ASSERT_NE(histogram, nullptr);
    const JsonValue *count = histogram->find("count");
    ASSERT_NE(count, nullptr);
    EXPECT_DOUBLE_EQ(count->number, 1.0);
}

TEST(ObsRegistryTest, ResetAllZeroesButKeepsInstruments)
{
    obs::MetricsRegistry &registry = obs::MetricsRegistry::instance();
    obs::Counter &counter = registry.counter("test_reset_total");
    obs::AtomicHistogram &histogram =
        registry.histogram("test_reset_ms", 10, 2);
    counter.inc(5);
    histogram.sample(3);
    registry.resetAll();
    EXPECT_EQ(counter.value(), 0u);
    EXPECT_EQ(histogram.snapshot().total(), 0u);
    // Same reference after the reset: entries are never removed.
    EXPECT_EQ(&registry.counter("test_reset_total"), &counter);
}

} // namespace
} // namespace padc
