/**
 * @file
 * Live-status unit tests: the deterministic rolling-window rate/ETA
 * estimator (driven with explicit now_ms values — no real clock), the
 * status.json write/load roundtrip through the atomic-rename writer,
 * and the progress/report renderers.
 */

#include "obs/status.hh"

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>

namespace padc
{
namespace
{

TEST(RateEstimatorTest, NoRateUntilTwoSamples)
{
    obs::RateEstimator rate;
    EXPECT_DOUBLE_EQ(rate.ratePerSec(1000), 0.0);
    rate.notePoint(1000);
    EXPECT_DOUBLE_EQ(rate.ratePerSec(1500), 0.0);
    EXPECT_LT(rate.etaSeconds(1500, 10), 0.0);
    rate.notePoint(2000);
    EXPECT_GT(rate.ratePerSec(2000), 0.0);
}

TEST(RateEstimatorTest, SteadyRateAndEta)
{
    obs::RateEstimator rate;
    // One completion per second from t=1s to t=8s.
    for (std::uint64_t t = 1000; t <= 8000; t += 1000)
        rate.notePoint(t);
    EXPECT_EQ(rate.noted(), 8u);
    EXPECT_NEAR(rate.ratePerSec(8000), 8.0 / 7.0, 0.02);
    // 14 remaining points at ~8/7 per second.
    EXPECT_NEAR(rate.etaSeconds(8000, 14), 14.0 * 7.0 / 8.0, 0.3);
    EXPECT_DOUBLE_EQ(rate.etaSeconds(8000, 0), 0.0);
}

TEST(RateEstimatorTest, WindowTracksRecentSpeed)
{
    obs::RateEstimator rate(4);
    // Slow phase: one point per 10 seconds.
    for (std::uint64_t t = 10000; t <= 50000; t += 10000)
        rate.notePoint(t);
    // Fast phase: one point per 100 ms; the window only remembers these.
    for (std::uint64_t t = 50100; t <= 50400; t += 100)
        rate.notePoint(t);
    const double fast = rate.ratePerSec(50400);
    EXPECT_GT(fast, 5.0); // nowhere near the 0.1/s slow phase
}

TEST(RateEstimatorTest, RateDecaysWhileStalled)
{
    obs::RateEstimator rate;
    rate.notePoint(1000);
    rate.notePoint(2000);
    const double at_completion = rate.ratePerSec(2000);
    const double stalled = rate.ratePerSec(60000);
    EXPECT_LT(stalled, at_completion / 10.0);
}

TEST(RateEstimatorTest, ReplayedPointsDoNotInflateRate)
{
    // The resume contract: journal-replayed points are never noted, so
    // an estimator fed only the genuinely executed completions reports
    // the execution rate -- not the (instant) replay rate. This models
    // a resumed sweep replaying 100 points in 10ms and then executing
    // 4 points at 1/s: the monitor notes only the 4.
    obs::RateEstimator rate;
    for (std::uint64_t t = 1000; t <= 4000; t += 1000)
        rate.notePoint(t);
    EXPECT_EQ(rate.noted(), 4u);
    EXPECT_NEAR(rate.ratePerSec(4000), 4.0 / 3.0, 0.05);
    // Had the 100 replays been noted across 10ms, the window rate
    // would be in the thousands per second; assert we are orders of
    // magnitude below that.
    EXPECT_LT(rate.ratePerSec(4000), 10.0);
}

obs::SweepStatus
sampleStatus()
{
    obs::SweepStatus status;
    status.state = "running";
    status.experiment = "smoke_grid";
    status.total = 9;
    status.done = 5;
    status.executed = 3;
    status.replayed = 2;
    status.failed = 1;
    status.retries = 4;
    status.quarantined = 1;
    status.active_workers = 2;
    status.elapsed_seconds = 12.5;
    status.rate_per_sec = 1.75;
    status.eta_seconds = 2.3;
    status.workers.push_back({1234, 2, 0, true});
    status.workers.push_back({1235, 1, 1, false});
    return status;
}

TEST(SweepStatusTest, WriteLoadRoundtrip)
{
    const std::filesystem::path dir =
        std::filesystem::temp_directory_path() /
        ("padc_status_test_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    const std::string path = (dir / "status.json").string();

    const obs::SweepStatus written = sampleStatus();
    std::string error;
    ASSERT_TRUE(obs::writeStatusFile(path, written, &error)) << error;

    obs::SweepStatus loaded;
    ASSERT_TRUE(obs::loadStatusFile(path, &loaded, &error)) << error;
    EXPECT_EQ(loaded.state, written.state);
    EXPECT_EQ(loaded.experiment, written.experiment);
    EXPECT_EQ(loaded.total, written.total);
    EXPECT_EQ(loaded.done, written.done);
    EXPECT_EQ(loaded.executed, written.executed);
    EXPECT_EQ(loaded.replayed, written.replayed);
    EXPECT_EQ(loaded.failed, written.failed);
    EXPECT_EQ(loaded.retries, written.retries);
    EXPECT_EQ(loaded.quarantined, written.quarantined);
    EXPECT_EQ(loaded.active_workers, written.active_workers);
    EXPECT_DOUBLE_EQ(loaded.elapsed_seconds, written.elapsed_seconds);
    EXPECT_DOUBLE_EQ(loaded.rate_per_sec, written.rate_per_sec);
    EXPECT_DOUBLE_EQ(loaded.eta_seconds, written.eta_seconds);
    ASSERT_EQ(loaded.workers.size(), 2u);
    EXPECT_EQ(loaded.workers[0].pid, 1234);
    EXPECT_EQ(loaded.workers[0].tasks, 2u);
    EXPECT_TRUE(loaded.workers[0].busy);
    EXPECT_EQ(loaded.workers[1].kills, 1u);
    EXPECT_FALSE(loaded.workers[1].busy);

    std::filesystem::remove_all(dir);
}

TEST(SweepStatusTest, LoadRejectsWrongSchemaAndMissingFile)
{
    const std::filesystem::path dir =
        std::filesystem::temp_directory_path() /
        ("padc_status_bad_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    const std::string path = (dir / "status.json").string();

    obs::SweepStatus out;
    std::string error;
    EXPECT_FALSE(obs::loadStatusFile(path, &out, &error));
    EXPECT_FALSE(error.empty());

    {
        std::ofstream file(path);
        file << "{\"schema\": \"padc-bench-result-v1\"}\n";
    }
    error.clear();
    EXPECT_FALSE(obs::loadStatusFile(path, &out, &error));
    EXPECT_FALSE(error.empty());

    std::filesystem::remove_all(dir);
}

TEST(SweepStatusTest, ProgressLineCarriesTheHeadlineNumbers)
{
    const std::string line = obs::renderProgressLine(sampleStatus());
    EXPECT_EQ(line.find('\n'), std::string::npos);
    EXPECT_NE(line.find("smoke_grid"), std::string::npos);
    EXPECT_NE(line.find("5/9"), std::string::npos);
    EXPECT_NE(line.find("2 replayed"), std::string::npos);
    EXPECT_NE(line.find("1.75"), std::string::npos);
    EXPECT_NE(line.find("workers 2"), std::string::npos);
    EXPECT_NE(line.find("retries 4"), std::string::npos);
    EXPECT_NE(line.find("quarantined 1"), std::string::npos);
}

TEST(SweepStatusTest, ProgressLineShowsUnknownEta)
{
    obs::SweepStatus status = sampleStatus();
    status.eta_seconds = -1.0;
    const std::string line = obs::renderProgressLine(status);
    EXPECT_NE(line.find("ETA --"), std::string::npos);
}

TEST(SweepStatusTest, ReportRendersWorkers)
{
    const std::string report = obs::renderStatusReport(sampleStatus());
    EXPECT_NE(report.find("smoke_grid"), std::string::npos);
    EXPECT_NE(report.find("running"), std::string::npos);
    EXPECT_NE(report.find("pid 1234"), std::string::npos);
    EXPECT_NE(report.find("busy"), std::string::npos);
    EXPECT_NE(report.find("idle"), std::string::npos);
}

} // namespace
} // namespace padc
