/**
 * @file
 * EventLog unit tests: the JSONL line format, write/load roundtrip,
 * append-across-reopen, torn-tail repair (the journal idiom), and
 * malformed-line tolerance in load().
 */

#include "obs/events.hh"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "exp/json.hh"

namespace padc
{
namespace
{

class EventLogTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        dir_ = std::filesystem::temp_directory_path() /
               ("padc_events_test_" + std::to_string(::getpid()) + "_" +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name());
        std::filesystem::remove_all(dir_);
        std::filesystem::create_directories(dir_);
        path_ = (dir_ / "events.jsonl").string();
    }

    void TearDown() override { std::filesystem::remove_all(dir_); }

    std::string fileText() const
    {
        std::ifstream in(path_, std::ios::binary);
        return {std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>()};
    }

    std::filesystem::path dir_;
    std::string path_;
};

obs::Event
makeEvent(const std::string &type, std::int64_t point = -1)
{
    obs::Event event;
    event.type = type;
    event.t_ms = 1234;
    event.point = point;
    event.worker = 42;
    event.attempt = 2;
    event.detail = "status: some \"quoted\" detail";
    return event;
}

TEST_F(EventLogTest, FormatEventIsSingleLineTaggedJson)
{
    const std::string line = formatEvent(makeEvent("point_retry", 7));
    EXPECT_EQ(line.find('\n'), std::string::npos);

    exp::JsonValue root;
    std::string error;
    ASSERT_TRUE(exp::parseJson(line, &root, &error)) << error;
    ASSERT_NE(root.find("padc"), nullptr);
    EXPECT_EQ(root.find("padc")->string, obs::kEventSchema);
    EXPECT_EQ(root.find("ev")->string, "point_retry");
    EXPECT_DOUBLE_EQ(root.find("t_ms")->number, 1234.0);
    EXPECT_DOUBLE_EQ(root.find("point")->number, 7.0);
    EXPECT_DOUBLE_EQ(root.find("worker")->number, 42.0);
    EXPECT_DOUBLE_EQ(root.find("attempt")->number, 2.0);
    EXPECT_EQ(root.find("detail")->string,
              "status: some \"quoted\" detail");
}

TEST_F(EventLogTest, RecordLoadRoundtrip)
{
    {
        obs::EventLog log(path_);
        ASSERT_TRUE(log.ok()) << log.error();
        EXPECT_TRUE(log.record(makeEvent("sweep_start")));
        EXPECT_TRUE(log.record(makeEvent("point_complete", 0)));
        EXPECT_TRUE(log.record(makeEvent("sweep_finish")));
    }
    std::vector<obs::Event> events;
    std::string error;
    ASSERT_TRUE(obs::EventLog::load(path_, &events, &error)) << error;
    ASSERT_EQ(events.size(), 3u);
    EXPECT_EQ(events[0].type, "sweep_start");
    EXPECT_EQ(events[1].type, "point_complete");
    EXPECT_EQ(events[1].point, 0);
    EXPECT_EQ(events[1].worker, 42);
    EXPECT_EQ(events[1].attempt, 2u);
    EXPECT_EQ(events[1].t_ms, 1234u);
    EXPECT_EQ(events[2].type, "sweep_finish");
}

TEST_F(EventLogTest, ReopenAppendsAfterExistingLines)
{
    {
        obs::EventLog log(path_);
        ASSERT_TRUE(log.ok());
        log.record(makeEvent("sweep_start"));
    }
    {
        obs::EventLog log(path_);
        ASSERT_TRUE(log.ok());
        log.record(makeEvent("sweep_resume"));
    }
    std::vector<obs::Event> events;
    ASSERT_TRUE(obs::EventLog::load(path_, &events));
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].type, "sweep_start");
    EXPECT_EQ(events[1].type, "sweep_resume");
}

TEST_F(EventLogTest, TornTailIsRepairedOnReopen)
{
    {
        obs::EventLog log(path_);
        ASSERT_TRUE(log.ok());
        log.record(makeEvent("sweep_start"));
    }
    // Simulate a crash mid-write: an unterminated partial JSON line.
    {
        std::ofstream out(path_, std::ios::app | std::ios::binary);
        out << "{\"padc\":\"padc-run-event-v1\",\"ev\":\"point_co";
    }
    {
        obs::EventLog log(path_);
        ASSERT_TRUE(log.ok());
        log.record(makeEvent("sweep_resume"));
    }
    // The repaired file must still be one record per line: the torn
    // fragment got its terminating newline, so the new record did not
    // glue onto it.
    std::vector<obs::Event> events;
    ASSERT_TRUE(obs::EventLog::load(path_, &events));
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].type, "sweep_start");
    EXPECT_EQ(events[1].type, "sweep_resume");
    EXPECT_NE(fileText().find("point_co\n"), std::string::npos);
}

TEST_F(EventLogTest, LoadSkipsMalformedAndForeignLines)
{
    {
        std::ofstream out(path_, std::ios::binary);
        out << formatEvent(makeEvent("sweep_start")) << "\n";
        out << "not json at all\n";
        out << "{\"schema\":\"something-else\",\"ev\":\"nope\"}\n";
        out << formatEvent(makeEvent("sweep_finish")) << "\n";
        out << "{\"padc\":\"padc-run-event-v1\",\"ev\":\"torn";
    }
    std::vector<obs::Event> events;
    ASSERT_TRUE(obs::EventLog::load(path_, &events));
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].type, "sweep_start");
    EXPECT_EQ(events[1].type, "sweep_finish");
}

TEST_F(EventLogTest, LoadFailsOnMissingFile)
{
    std::vector<obs::Event> events;
    std::string error;
    EXPECT_FALSE(obs::EventLog::load((dir_ / "absent.jsonl").string(),
                                     &events, &error));
    EXPECT_FALSE(error.empty());
}

} // namespace
} // namespace padc
