/**
 * @file
 * Telemetry tests: TraceBuffer retention, IntervalSampler ring/delta
 * arithmetic, and the System-level golden checks -- a deterministic run
 * whose CSV PAR column matches the accuracy tracker at the final
 * interval, whose Chrome trace JSON parses and carries the required
 * members with monotonic per-track timestamps, and whose simulated
 * behaviour is bit-identical with telemetry attached and detached.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "exp/json.hh"
#include "sim/system.hh"
#include "telemetry/export.hh"
#include "telemetry/telemetry.hh"
#include "workload/generator.hh"
#include "workload/mixes.hh"

namespace padc::telemetry
{
namespace
{

TEST(TelemetryConfig, AnyReflectsEnabledSinks)
{
    TelemetryConfig config;
    EXPECT_FALSE(config.any());
    config.trace = true;
    EXPECT_TRUE(config.any());
    config.trace = false;
    config.timeseries = true;
    EXPECT_TRUE(config.any());
}

TEST(TraceBuffer, RetainsPrefixAndCountsOverflow)
{
    TraceBuffer buffer(3);
    for (std::uint64_t i = 0; i < 5; ++i) {
        TraceEvent event;
        event.cycle = i;
        buffer.record(event);
    }
    EXPECT_EQ(buffer.seen(), 5u);
    EXPECT_EQ(buffer.dropped(), 2u);
    ASSERT_EQ(buffer.events().size(), 3u);
    EXPECT_EQ(buffer.events()[0].cycle, 0u);
    EXPECT_EQ(buffer.events()[2].cycle, 2u); // kept prefix, in order
}

TEST(TraceBuffer, ZeroLimitCountsOnly)
{
    TraceBuffer buffer(0);
    buffer.record(TraceEvent{});
    buffer.record(TraceEvent{});
    EXPECT_EQ(buffer.seen(), 2u);
    EXPECT_EQ(buffer.dropped(), 2u);
    EXPECT_TRUE(buffer.events().empty());
}

TEST(IntervalSampler, ComputesIntervalDeltas)
{
    IntervalSampler sampler(16);
    std::vector<IntervalSampler::CoreSample> cores(1);
    std::vector<IntervalSampler::ChannelSample> channels(1);

    cores[0].par = 0.5;
    cores[0].sent = 10;
    cores[0].dropped = 0;
    cores[0].used = 4;
    channels[0].reads = 100;
    channels[0].writes = 20;
    channels[0].row_hits = 60;
    channels[0].row_reads = 100;
    channels[0].occupancy_sum = 500;
    channels[0].dram_cycles = 1000;
    sampler.sample(1000, cores, channels, /*busy_cycles_per_burst=*/2);

    cores[0].par = 0.25;
    cores[0].sent = 25;    // +15 this interval
    cores[0].dropped = 5;  // +5 -> interval psc 10
    cores[0].used = 9;     // +5 -> interval puc 5
    cores[0].drop_threshold = 300;
    channels[0].reads = 160;     // +60 bursts
    channels[0].writes = 60;     // +40 bursts
    channels[0].row_hits = 120;  // +60 hits ...
    channels[0].row_reads = 150; // ... of +50 reads with a row outcome
    channels[0].occupancy_sum = 1500; // +1000 over +500 DRAM cycles
    channels[0].dram_cycles = 1500;
    channels[0].write_queue = 7;
    sampler.sample(2000, cores, channels, 2);

    const auto rows = sampler.rows();
    ASSERT_EQ(rows.size(), 2u);
    const IntervalRow &row = rows[1];
    EXPECT_EQ(row.cycle, 2000u);
    EXPECT_EQ(row.core, 0u);
    EXPECT_DOUBLE_EQ(row.par, 0.25);
    EXPECT_EQ(row.psc, 10u);
    EXPECT_EQ(row.puc, 5u);
    EXPECT_EQ(row.drop_threshold, 300u);
    EXPECT_EQ(row.sent, 25u);   // lifetime counters pass through
    EXPECT_EQ(row.used, 9u);
    EXPECT_EQ(row.dropped, 5u);
    // (60 + 40 bursts) * 2 busy cycles / 1000 elapsed cycles / 1 channel.
    EXPECT_DOUBLE_EQ(row.bus_util, 0.2);
    EXPECT_DOUBLE_EQ(row.row_hit_rate, 60.0 / 50.0);
    EXPECT_DOUBLE_EQ(row.read_queue, 2.0); // +1000 occupancy / +500 cycles
    EXPECT_EQ(row.write_queue, 7u);
}

TEST(IntervalSampler, RingKeepsNewestRows)
{
    IntervalSampler sampler(2);
    std::vector<IntervalSampler::CoreSample> cores(1);
    std::vector<IntervalSampler::ChannelSample> channels;
    for (Cycle cycle = 100; cycle <= 400; cycle += 100) {
        cores[0].sent = cycle;
        sampler.sample(cycle, cores, channels, 1);
    }
    EXPECT_EQ(sampler.pushed(), 4u);
    EXPECT_EQ(sampler.dropped(), 2u);
    const auto rows = sampler.rows();
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0].cycle, 300u); // ring: the tail of the run survives
    EXPECT_EQ(rows[1].cycle, 400u);
}

// --- System-level golden checks --------------------------------------

struct GoldenRun
{
    std::unique_ptr<Collector> collector; // null when telemetry detached
    std::vector<std::unique_ptr<workload::SyntheticTrace>> traces;
    std::unique_ptr<sim::System> system;
};

/** One deterministic small PADC run, optionally with both sinks. */
GoldenRun
runGolden(bool with_telemetry)
{
    sim::SystemConfig config = sim::SystemConfig::baseline(2);

    GoldenRun run;
    if (with_telemetry) {
        TelemetryConfig tcfg;
        tcfg.timeseries = true;
        tcfg.trace = true;
        run.collector = std::make_unique<Collector>(tcfg);
        config.collector = run.collector.get();
    }

    const workload::Mix mix = {"mcf_06", "lbm_06"};
    std::vector<core::TraceSource *> sources;
    for (std::uint32_t c = 0; c < config.num_cores; ++c) {
        run.traces.push_back(std::make_unique<workload::SyntheticTrace>(
            workload::traceParamsFor(mix, c, /*seed=*/7)));
        sources.push_back(run.traces.back().get());
    }
    run.system = std::make_unique<sim::System>(config, std::move(sources));
    run.system->run(/*instructions_per_core=*/30000,
                    /*max_cycles=*/400000);
    return run;
}

TEST(TelemetryGolden, TimeseriesMatchesTrackerAtFinalInterval)
{
    const GoldenRun run = runGolden(true);
    const sim::System &system = *run.system;
    const IntervalSampler *sampler = run.collector->sampler();
    ASSERT_NE(sampler, nullptr);

    const auto rows = sampler->rows();
    const std::uint32_t cores = system.config().num_cores;
    ASSERT_GE(rows.size(), 2 * cores) << "run too short to sample";
    // One row per core per interval boundary, in (interval, core) order,
    // at exactly the cycles the Fig. 4(b) accuracy timeline recorded.
    ASSERT_EQ(rows.size(), system.accuracyTimeline().size() * cores);
    for (std::size_t i = 0; i < rows.size(); ++i) {
        EXPECT_EQ(rows[i].core, i % cores);
        EXPECT_EQ(rows[i].cycle,
                  system.accuracyTimeline()[i / cores].first);
    }
    // Core 0's sampled PAR is the tracker's timeline, row for row.
    for (std::size_t i = 0; i < rows.size(); i += cores)
        EXPECT_DOUBLE_EQ(rows[i].par,
                         system.accuracyTimeline()[i / cores].second);

    // The tracker is the PAR source of truth: the last sampled row per
    // core matches its end-of-run accuracy estimate exactly, because
    // PAR only changes at interval boundaries and every boundary is
    // sampled. The lifetime counters keep advancing between the last
    // boundary and the end of the run, so they are bounded, not equal.
    for (std::uint32_t c = 0; c < cores; ++c) {
        const IntervalRow &last = rows[rows.size() - cores + c];
        EXPECT_DOUBLE_EQ(last.par, system.tracker().accuracy(c));
        EXPECT_LE(last.sent, system.tracker().totalSent(c));
        EXPECT_LE(last.used, system.tracker().totalUsed(c));
        EXPECT_LE(last.dropped, system.tracker().totalDropped(c));
        EXPECT_GT(last.sent, 0u); // the mixes do prefetch
    }
}

TEST(TelemetryGolden, CsvParColumnRoundTrips)
{
    const GoldenRun run = runGolden(true);
    const std::string csv =
        timeseriesCsv({{"golden", run.collector->sampler()}});

    std::istringstream lines(csv);
    std::string header;
    ASSERT_TRUE(std::getline(lines, header));
    EXPECT_EQ(header,
              "point,label,cycle,core,par,psc,puc,drop_threshold,sent,"
              "used,dropped,bus_util,row_hit_rate,read_queue,write_queue,"
              "svc_demand_read,svc_prefetch,svc_writeback,svc_ptw_read,"
              "svc_dram_cache_fill");

    // The label "golden" needs no CSV quoting, so plain comma-splitting
    // is exact. Collect the last row per core and count data lines.
    std::map<std::string, std::vector<std::string>> last_row_for_core;
    std::size_t data_lines = 0;
    std::string line;
    while (std::getline(lines, line)) {
        if (line.empty())
            continue;
        ++data_lines;
        std::vector<std::string> fields;
        std::istringstream split(line);
        std::string field;
        while (std::getline(split, field, ','))
            fields.push_back(field);
        ASSERT_EQ(fields.size(), 15u + kRequestClassCount) << line;
        EXPECT_EQ(fields[0], "0");        // single point
        EXPECT_EQ(fields[1], "golden");
        last_row_for_core[fields[3]] = fields;
    }
    EXPECT_EQ(data_lines, run.collector->sampler()->rows().size());
    const std::uint32_t cores = run.system->config().num_cores;
    ASSERT_EQ(last_row_for_core.size(), cores);

    // PAR round-trips bit-exactly: jsonNumber emits shortest-round-trip
    // decimals, so strtod must reproduce the tracker's double -- this is
    // the golden check that the CSV PAR column IS the tracker accuracy
    // at the final interval. Integer columns round-trip via the rows.
    const auto rows = run.collector->sampler()->rows();
    for (std::uint32_t c = 0; c < cores; ++c) {
        const auto &fields = last_row_for_core[std::to_string(c)];
        const double par = std::strtod(fields[4].c_str(), nullptr);
        EXPECT_DOUBLE_EQ(par, run.system->tracker().accuracy(c)) << c;
        const IntervalRow &last = rows[rows.size() - cores + c];
        EXPECT_EQ(fields[2], std::to_string(last.cycle));
        EXPECT_EQ(fields[8], std::to_string(last.sent));
    }
}

TEST(TelemetryGolden, ChromeTraceJsonIsValidAndMonotonic)
{
    const GoldenRun run = runGolden(true);
    ASSERT_NE(run.collector->trace(), nullptr);
    EXPECT_GT(run.collector->trace()->seen(), 0u);

    const std::string json =
        chromeTraceJson({{"golden", run.collector->trace()}});
    exp::JsonValue root;
    std::string error;
    ASSERT_TRUE(exp::parseJson(json, &root, &error)) << error;
    ASSERT_TRUE(root.isObject());
    const exp::JsonValue *events = root.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());
    ASSERT_FALSE(events->array.empty());

    std::map<std::pair<double, double>, double> last_instant_ts;
    std::size_t duration_events = 0;
    for (const exp::JsonValue &event : events->array) {
        ASSERT_TRUE(event.isObject());
        ASSERT_NE(event.find("name"), nullptr);
        ASSERT_NE(event.find("ph"), nullptr);
        ASSERT_NE(event.find("pid"), nullptr);
        ASSERT_NE(event.find("ts"), nullptr);
        const std::string &ph = event.find("ph")->string;
        if (ph != "M") { // process_name metadata has no thread track
            ASSERT_NE(event.find("tid"), nullptr);
        }
        const double ts = event.find("ts")->number;
        EXPECT_GE(ts, 0.0);
        if (ph == "X") {
            // Completed read: duration spans arrival -> completion.
            ++duration_events;
            ASSERT_NE(event.find("dur"), nullptr);
            EXPECT_GE(event.find("dur")->number, 0.0);
        } else if (ph == "i") {
            // Events are exported in buffer (record) order, so instants
            // on one track must have non-decreasing timestamps.
            const auto track =
                std::make_pair(event.find("pid")->number,
                               event.find("tid")->number);
            const auto it = last_instant_ts.find(track);
            if (it != last_instant_ts.end()) {
                EXPECT_GE(ts, it->second);
            }
            last_instant_ts[track] = ts;
        } else {
            EXPECT_EQ(ph, "M") << "unexpected phase " << ph;
        }
    }
    EXPECT_GT(duration_events, 0u); // reads completed during the run
}

TEST(TelemetryGolden, TraceEventClassAgreesWithFlagsAndNameTable)
{
    const GoldenRun run = runGolden(true);
    ASSERT_NE(run.collector->trace(), nullptr);
    const auto &events = run.collector->trace()->events();
    ASSERT_FALSE(events.empty());

    std::size_t prefetch_events = 0;
    for (const TraceEvent &event : events) {
        if (event.kind == EventKind::Refresh)
            continue; // channel-wide, no request attached
        // The class byte decodes to a real enumerator whose name-table
        // entry resolves (round-trip through the name table).
        const RequestClass cls = event.requestClass();
        ASSERT_LT(event.cls, kRequestClassCount);
        ASSERT_NE(toString(cls), "unknown");
        RequestClass parsed{};
        ASSERT_TRUE(parseRequestClass(toString(cls), &parsed));
        EXPECT_EQ(parsed, cls);
        // The class column and the legacy flag bits tell one story.
        EXPECT_EQ((event.flags & TraceEvent::kPrefetch) != 0,
                  cls == RequestClass::Prefetch);
        EXPECT_EQ((event.flags & TraceEvent::kWrite) != 0,
                  cls == RequestClass::Writeback);
        prefetch_events += cls == RequestClass::Prefetch ? 1 : 0;
    }
    EXPECT_GT(prefetch_events, 0u); // the golden mixes do prefetch
}

TEST(TelemetryGolden, AttachedTelemetryDoesNotPerturbSimulation)
{
    const GoldenRun with = runGolden(true);
    const GoldenRun without = runGolden(false);
    EXPECT_EQ(with.system->cycles(), without.system->cycles());
    const StatSet a = with.system->exportStats();
    const StatSet b = without.system->exportStats();
    ASSERT_EQ(a.entries().size(), b.entries().size());
    for (std::size_t i = 0; i < a.entries().size(); ++i) {
        EXPECT_EQ(a.entries()[i].first, b.entries()[i].first);
        EXPECT_DOUBLE_EQ(a.entries()[i].second, b.entries()[i].second)
            << a.entries()[i].first;
    }
}

} // namespace
} // namespace padc::telemetry
