/**
 * @file
 * End-to-end telemetry export through the padc driver (in-process via
 * driverMain): `run smoke --trace --timeseries` must emit a parseable
 * Chrome trace JSON and a populated CSV, record both sinks in
 * BENCH_smoke.json next to the wall-clock profile, honour
 * --trace-limit, and fail fast -- before any simulation -- on invalid
 * flags or output paths.
 */

#include "exp/driver.hh"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exp/json.hh"

namespace padc::exp
{
namespace
{

int
runDriver(const std::vector<std::string> &args, std::string *out,
          std::string *err)
{
    std::vector<const char *> argv = {"padc"};
    for (const auto &arg : args)
        argv.push_back(arg.c_str());
    testing::internal::CaptureStdout();
    testing::internal::CaptureStderr();
    const int rc =
        driverMain(static_cast<int>(argv.size()), argv.data());
    *out = testing::internal::GetCapturedStdout();
    *err = testing::internal::GetCapturedStderr();
    return rc;
}

std::filesystem::path
freshOutDir(const std::string &name)
{
    const auto dir = std::filesystem::temp_directory_path() /
                     ("padc_trace_export_test_" + name);
    std::filesystem::remove_all(dir);
    return dir;
}

std::string
readFile(const std::filesystem::path &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

/** Parse a written JSON file or fail the test with the parse error. */
JsonValue
parseFile(const std::filesystem::path &path)
{
    JsonValue root;
    std::string error;
    EXPECT_TRUE(parseJson(readFile(path), &root, &error))
        << path << ": " << error;
    return root;
}

/** The "sinks" entry of the given kind, or nullptr. */
const JsonValue *
findSink(const JsonValue &result, const std::string &kind)
{
    const JsonValue *sinks = result.find("sinks");
    if (sinks == nullptr)
        return nullptr;
    for (const JsonValue &sink : sinks->array) {
        if (sink.find("kind") != nullptr &&
            sink.find("kind")->string == kind)
            return &sink;
    }
    return nullptr;
}

TEST(TraceExport, SmokeRunWritesBothSinksAndRecordsThem)
{
    const auto dir = freshOutDir("sinks");
    std::string out, err;
    ASSERT_EQ(runDriver({"run", "smoke", "--trace", "--timeseries",
                         "--out", dir.string()},
                        &out, &err),
              0)
        << err;
    // The text footer reports both written files and the profile line.
    EXPECT_NE(out.find("wrote trace"), std::string::npos) << out;
    EXPECT_NE(out.find("wrote timeseries"), std::string::npos) << out;
    EXPECT_NE(out.find("scheduler ~"), std::string::npos) << out;

    // Default per-experiment paths under --out.
    const auto trace_path = dir / "smoke.trace.json";
    const auto csv_path = dir / "smoke.timeseries.csv";
    ASSERT_TRUE(std::filesystem::exists(trace_path));
    ASSERT_TRUE(std::filesystem::exists(csv_path));

    // The trace is valid JSON in Chrome trace-event shape.
    const JsonValue trace = parseFile(trace_path);
    ASSERT_TRUE(trace.isObject());
    const JsonValue *events = trace.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());
    EXPECT_GT(events->array.size(), 0u);

    // The CSV has the schema header and data rows for both sweep points.
    std::istringstream csv(readFile(csv_path));
    std::string header;
    ASSERT_TRUE(std::getline(csv, header));
    EXPECT_EQ(header.rfind("point,label,cycle,core,par,", 0), 0u);
    std::size_t data_lines = 0;
    std::string line;
    while (std::getline(csv, line)) {
        if (!line.empty())
            ++data_lines;
    }
    EXPECT_GT(data_lines, 0u);

    // BENCH_smoke.json records both sinks with matching paths/rows.
    const JsonValue bench = parseFile(dir / "BENCH_smoke.json");
    const JsonValue *trace_sink = findSink(bench, "trace");
    ASSERT_NE(trace_sink, nullptr);
    EXPECT_EQ(trace_sink->find("path")->string, trace_path.string());
    EXPECT_GT(trace_sink->find("rows")->number, 0.0);
    const JsonValue *series_sink = findSink(bench, "timeseries");
    ASSERT_NE(series_sink, nullptr);
    EXPECT_EQ(series_sink->find("path")->string, csv_path.string());
    EXPECT_DOUBLE_EQ(series_sink->find("rows")->number,
                     static_cast<double>(data_lines));

    // The profile block is populated alongside.
    const JsonValue *profile = bench.find("profile");
    ASSERT_NE(profile, nullptr);
    EXPECT_GT(profile->find("simulate_seconds")->number, 0.0);
    EXPECT_GE(profile->find("scheduler_sampled_cycles")->number, 0.0);
    std::filesystem::remove_all(dir);
}

TEST(TraceExport, TraceLimitBoundsRetention)
{
    const auto dir = freshOutDir("limit");
    std::string out, err;
    ASSERT_EQ(runDriver({"run", "smoke", "--trace", "--trace-limit",
                         "10", "--out", dir.string()},
                        &out, &err),
              0)
        << err;

    const JsonValue bench = parseFile(dir / "BENCH_smoke.json");
    const JsonValue *sink = findSink(bench, "trace");
    ASSERT_NE(sink, nullptr);
    // smoke is a 2-point sweep: at most 10 kept events per point, and
    // the (much larger) remainder is counted as dropped.
    EXPECT_LE(sink->find("rows")->number, 20.0);
    EXPECT_GT(sink->find("dropped")->number, 0.0);

    const JsonValue trace = parseFile(dir / "smoke.trace.json");
    std::size_t non_metadata = 0;
    for (const JsonValue &event : trace.find("traceEvents")->array) {
        if (event.find("ph")->string != "M")
            ++non_metadata;
    }
    EXPECT_LE(non_metadata, 20u);
    std::filesystem::remove_all(dir);
}

TEST(TraceExport, InvalidTraceLimitFailsWithUsage)
{
    std::string out, err;
    EXPECT_EQ(runDriver({"run", "smoke", "--trace-limit", "nope"}, &out,
                        &err),
              2);
    EXPECT_NE(err.find("--trace-limit"), std::string::npos) << err;
    EXPECT_NE(err.find("usage:"), std::string::npos) << err;
}

TEST(TraceExport, MissingSinkDirectoryFailsBeforeSimulation)
{
    std::string out, err;
    EXPECT_EQ(runDriver({"run", "smoke",
                         "--trace=/no/such/dir/x.trace.json"},
                        &out, &err),
              2);
    EXPECT_NE(err.find("does not exist"), std::string::npos) << err;
    EXPECT_NE(err.find("/no/such/dir"), std::string::npos) << err;
}

TEST(TraceExport, ExplicitPathRejectedForMultipleExperiments)
{
    std::string out, err;
    EXPECT_EQ(runDriver({"run", "smoke", "fig09",
                         "--timeseries=/tmp/x.timeseries.csv"},
                        &out, &err),
              2);
    EXPECT_NE(err.find("single selected experiment"), std::string::npos)
        << err;
}

} // namespace
} // namespace padc::exp
