/**
 * @file
 * Unit tests for the set-associative cache: lookup, LRU replacement,
 * dirty/prefetched line lifecycle, invalidation, and configuration
 * validation.
 */

#include <gtest/gtest.h>

#include "cache/cache.hh"

namespace padc::cache
{
namespace
{

CacheConfig
smallConfig(std::uint32_t ways = 2, std::uint64_t size = 4096)
{
    CacheConfig cfg;
    cfg.size_bytes = size; // 4KB, 2-way -> 32 sets
    cfg.ways = ways;
    cfg.hit_latency = 2;
    return cfg;
}

/** Two addresses mapping to the same set of a cache. */
Addr
sameSetAddr(const CacheConfig &cfg, Addr base, std::uint32_t n)
{
    return base + static_cast<Addr>(n) * cfg.sets() * kLineBytes;
}

TEST(CacheConfigTest, Validation)
{
    EXPECT_TRUE(smallConfig().valid());
    CacheConfig bad = smallConfig();
    bad.ways = 0;
    EXPECT_FALSE(bad.valid());
    bad = smallConfig();
    bad.size_bytes = 4096 + 64; // not divisible into pow2 sets
    EXPECT_FALSE(bad.valid());
    bad = smallConfig(3, 4096 * 3); // 64 sets, 3 ways -> valid? sets pow2
    EXPECT_TRUE(bad.valid());
}

TEST(CacheTest, MissThenHit)
{
    SetAssocCache cache(smallConfig(), "t");
    EXPECT_EQ(cache.access(0x1000), nullptr);
    cache.fill(0x1000, 0, 0, false, false, 0);
    Line *line = cache.access(0x1008); // same line, different offset
    ASSERT_NE(line, nullptr);
    EXPECT_EQ(line->line_addr, 0x1000u);
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(CacheTest, ProbeDoesNotTouchStats)
{
    SetAssocCache cache(smallConfig(), "t");
    cache.fill(0x1000, 0, 0, false, false, 0);
    EXPECT_TRUE(cache.probe(0x1000));
    EXPECT_FALSE(cache.probe(0x2000));
    EXPECT_EQ(cache.stats().hits, 0u);
    EXPECT_EQ(cache.stats().misses, 0u);
}

TEST(CacheTest, LruEviction)
{
    const CacheConfig cfg = smallConfig();
    SetAssocCache cache(cfg, "t");
    const Addr a = 0x0;
    const Addr b = sameSetAddr(cfg, a, 1);
    const Addr c = sameSetAddr(cfg, a, 2);
    cache.fill(a, 0, 0, false, false, 0);
    cache.fill(b, 0, 0, false, false, 0);
    ASSERT_NE(cache.access(a), nullptr); // touch a -> b becomes LRU
    const EvictResult ev = cache.fill(c, 0, 0, false, false, 0);
    ASSERT_TRUE(ev.valid);
    EXPECT_EQ(ev.line_addr, b);
    EXPECT_TRUE(cache.probe(a));
    EXPECT_FALSE(cache.probe(b));
    EXPECT_TRUE(cache.probe(c));
}

TEST(CacheTest, FillPrefersInvalidWay)
{
    const CacheConfig cfg = smallConfig();
    SetAssocCache cache(cfg, "t");
    cache.fill(0x0, 0, 0, false, false, 0);
    const EvictResult ev =
        cache.fill(sameSetAddr(cfg, 0x0, 1), 0, 0, false, false, 0);
    EXPECT_FALSE(ev.valid); // free way existed
}

TEST(CacheTest, DirtyEvictionReported)
{
    const CacheConfig cfg = smallConfig();
    SetAssocCache cache(cfg, "t");
    cache.fill(0x0, 0, 0, false, false, 0);
    cache.access(0x0)->dirty = true;
    cache.fill(sameSetAddr(cfg, 0x0, 1), 0, 0, false, false, 0);
    const EvictResult ev =
        cache.fill(sameSetAddr(cfg, 0x0, 2), 0, 0, false, false, 0);
    ASSERT_TRUE(ev.valid);
    EXPECT_TRUE(ev.dirty);
    EXPECT_EQ(cache.stats().dirty_evictions, 1u);
}

TEST(CacheTest, PrefetchedUnusedEvictionReported)
{
    const CacheConfig cfg = smallConfig();
    SetAssocCache cache(cfg, "t");
    cache.fill(0x0, 3, 0x777, true, true, 555);
    cache.fill(sameSetAddr(cfg, 0x0, 1), 0, 0, false, false, 0);
    const EvictResult ev =
        cache.fill(sameSetAddr(cfg, 0x0, 2), 0, 0, false, false, 0);
    ASSERT_TRUE(ev.valid);
    EXPECT_TRUE(ev.prefetched_unused);
    EXPECT_EQ(ev.owner, 3u);
    EXPECT_EQ(ev.pc, 0x777u);
    EXPECT_EQ(ev.service_time, 555u);
    EXPECT_EQ(cache.stats().useless_evictions, 1u);
}

TEST(CacheTest, PBitClearedByCallerStopsUselessAccounting)
{
    const CacheConfig cfg = smallConfig();
    SetAssocCache cache(cfg, "t");
    cache.fill(0x0, 0, 0, true, false, 0);
    // Simulate the system resolving the prefetch as useful.
    cache.access(0x0)->prefetched = false;
    cache.fill(sameSetAddr(cfg, 0x0, 1), 0, 0, false, false, 0);
    const EvictResult ev =
        cache.fill(sameSetAddr(cfg, 0x0, 2), 0, 0, false, false, 0);
    ASSERT_TRUE(ev.valid);
    EXPECT_FALSE(ev.prefetched_unused);
    EXPECT_EQ(cache.stats().useless_evictions, 0u);
}

TEST(CacheTest, FillRowHitAndServiceTimeStored)
{
    SetAssocCache cache(smallConfig(), "t");
    cache.fill(0x40, 1, 0x90, true, true, 321);
    const Line *line = cache.peek(0x40);
    ASSERT_NE(line, nullptr);
    EXPECT_TRUE(line->fill_row_hit);
    EXPECT_EQ(line->service_time, 321u);
    EXPECT_EQ(line->owner, 1u);
    EXPECT_EQ(line->pc, 0x90u);
}

TEST(CacheTest, InvalidateReturnsDirtiness)
{
    SetAssocCache cache(smallConfig(), "t");
    cache.fill(0x40, 0, 0, false, false, 0);
    EXPECT_FALSE(cache.invalidate(0x40));
    EXPECT_FALSE(cache.probe(0x40));
    cache.fill(0x40, 0, 0, false, false, 0);
    cache.access(0x40)->dirty = true;
    EXPECT_TRUE(cache.invalidate(0x40));
    EXPECT_FALSE(cache.invalidate(0x40)); // already gone
}

TEST(CacheTest, PeekDoesNotUpdateRecency)
{
    const CacheConfig cfg = smallConfig();
    SetAssocCache cache(cfg, "t");
    const Addr a = 0x0;
    const Addr b = sameSetAddr(cfg, a, 1);
    cache.fill(a, 0, 0, false, false, 0);
    cache.fill(b, 0, 0, false, false, 0);
    cache.peek(a); // must NOT refresh a
    const EvictResult ev =
        cache.fill(sameSetAddr(cfg, a, 2), 0, 0, false, false, 0);
    ASSERT_TRUE(ev.valid);
    EXPECT_EQ(ev.line_addr, a); // a was still LRU
}

TEST(CacheTest, ForEachLineVisitsValidOnly)
{
    SetAssocCache cache(smallConfig(), "t");
    cache.fill(0x0, 0, 0, true, false, 0);
    cache.fill(0x40, 0, 0, false, false, 0);
    cache.invalidate(0x40);
    int count = 0;
    int prefetched = 0;
    cache.forEachLine([&](const Line &line) {
        ++count;
        prefetched += line.prefetched ? 1 : 0;
    });
    EXPECT_EQ(count, 1);
    EXPECT_EQ(prefetched, 1);
}

TEST(CacheTest, RandomReplacementIsDeterministic)
{
    CacheConfig cfg = smallConfig();
    cfg.repl = ReplPolicyKind::Random;
    SetAssocCache a(cfg, "a");
    SetAssocCache b(cfg, "b");
    for (std::uint32_t i = 0; i < 20; ++i) {
        const Addr addr = sameSetAddr(cfg, 0x0, i);
        const EvictResult ea = a.fill(addr, 0, 0, false, false, 0);
        const EvictResult eb = b.fill(addr, 0, 0, false, false, 0);
        EXPECT_EQ(ea.valid, eb.valid);
        if (ea.valid)
            EXPECT_EQ(ea.line_addr, eb.line_addr);
    }
}

/** Property: the cache never holds more lines than its capacity. */
class CacheCapacityProperty
    : public ::testing::TestWithParam<std::tuple<std::uint32_t,
                                                 std::uint64_t>>
{
};

TEST_P(CacheCapacityProperty, OccupancyBounded)
{
    const auto [ways, size] = GetParam();
    CacheConfig cfg;
    cfg.ways = ways;
    cfg.size_bytes = size;
    cfg.hit_latency = 1;
    ASSERT_TRUE(cfg.valid());
    SetAssocCache cache(cfg, "t");
    std::uint64_t x = 88172645463325252ULL;
    for (int i = 0; i < 5000; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        const Addr addr = lineAlign(x & 0xFFFFFF);
        if (!cache.probe(addr))
            cache.fill(addr, 0, 0, false, false, 0);
    }
    std::uint64_t valid = 0;
    cache.forEachLine([&](const Line &) { ++valid; });
    EXPECT_LE(valid, size / kLineBytes);
    EXPECT_EQ(cache.stats().fills,
              cache.stats().evictions + valid);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CacheCapacityProperty,
    ::testing::Values(std::make_tuple(1u, 2048ULL),
                      std::make_tuple(2u, 4096ULL),
                      std::make_tuple(8u, 32768ULL),
                      std::make_tuple(16u, 65536ULL)));

} // namespace
} // namespace padc::cache
