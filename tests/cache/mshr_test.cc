/**
 * @file
 * Unit tests for the MSHR file.
 */

#include <gtest/gtest.h>

#include "cache/mshr.hh"

namespace padc::cache
{
namespace
{

TEST(MshrTest, AllocFindRelease)
{
    MshrFile mshr(4);
    EXPECT_EQ(mshr.find(0x1000), nullptr);
    MshrEntry &e = mshr.alloc(0x1000);
    e.core = 2;
    e.cls = RequestClass::Prefetch;
    ASSERT_NE(mshr.find(0x1000), nullptr);
    EXPECT_EQ(mshr.find(0x1000)->core, 2u);
    EXPECT_TRUE(mshr.find(0x1000)->isPrefetch());
    mshr.release(0x1000);
    EXPECT_EQ(mshr.find(0x1000), nullptr);
}

TEST(MshrTest, FullAtCapacity)
{
    MshrFile mshr(2);
    mshr.alloc(0x40);
    EXPECT_FALSE(mshr.full());
    mshr.alloc(0x80);
    EXPECT_TRUE(mshr.full());
    mshr.release(0x40);
    EXPECT_FALSE(mshr.full());
}

TEST(MshrTest, SizeAndPeakTracking)
{
    MshrFile mshr(8);
    mshr.alloc(0x40);
    mshr.alloc(0x80);
    mshr.alloc(0xC0);
    EXPECT_EQ(mshr.size(), 3u);
    mshr.release(0x80);
    mshr.release(0xC0);
    EXPECT_EQ(mshr.size(), 1u);
    EXPECT_EQ(mshr.peak(), 3u);
}

TEST(MshrTest, EntryInitializedWithLineAddress)
{
    MshrFile mshr(2);
    MshrEntry &e = mshr.alloc(0x2040);
    EXPECT_EQ(e.line_addr, 0x2040u);
    EXPECT_FALSE(e.isPrefetch());
    EXPECT_FALSE(e.store_waiting);
    EXPECT_TRUE(e.waiters.empty());
}

TEST(MshrTest, WaitersAccumulate)
{
    MshrFile mshr(2);
    MshrEntry &e = mshr.alloc(0x40);
    e.waiters.push_back({0, 11});
    e.waiters.push_back({1, 22});
    ASSERT_EQ(mshr.find(0x40)->waiters.size(), 2u);
    EXPECT_EQ(mshr.find(0x40)->waiters[1].core, 1u);
    EXPECT_EQ(mshr.find(0x40)->waiters[1].tag, 22u);
}

TEST(MshrTest, ConstFind)
{
    MshrFile mshr(2);
    mshr.alloc(0x40);
    const MshrFile &cref = mshr;
    EXPECT_NE(cref.find(0x40), nullptr);
    EXPECT_EQ(cref.find(0x80), nullptr);
}

} // namespace
} // namespace padc::cache
