/**
 * CLI-level tests of the padc driver (in-process via driverMain):
 * argument parsing, list enumeration, unknown-selector diagnostics,
 * structured JSON output, and schema-snapshot validation of the
 * emitted BENCH_<name>.json files. PADC_SCHEMA_PATH points at the
 * checked-in tests/exp/bench_result_schema.json.
 */

#include "exp/driver.hh"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include <unistd.h>

#include "exp/json.hh"
#include "exp/registry.hh"

namespace padc::exp
{
namespace
{

int
runDriver(const std::vector<std::string> &args, std::string *out,
          std::string *err)
{
    std::vector<const char *> argv = {"padc"};
    for (const auto &arg : args)
        argv.push_back(arg.c_str());
    testing::internal::CaptureStdout();
    testing::internal::CaptureStderr();
    const int rc =
        driverMain(static_cast<int>(argv.size()), argv.data());
    *out = testing::internal::GetCapturedStdout();
    *err = testing::internal::GetCapturedStderr();
    return rc;
}

std::filesystem::path
freshOutDir(const std::string &name)
{
    // Unique per process: ctest runs this suite both as individual
    // cases and as one whole-binary smoke test, concurrently.
    const auto dir = std::filesystem::temp_directory_path() /
                     ("padc_driver_test_" + name + "." +
                      std::to_string(::getpid()));
    std::filesystem::remove_all(dir);
    return dir;
}

TEST(ParseDriverArgs, CommandsAndFlags)
{
    DriverOptions options;
    std::string error;

    const char *list[] = {"padc", "list"};
    ASSERT_TRUE(parseDriverArgs(2, list, &options, &error)) << error;
    EXPECT_EQ(options.command, DriverOptions::Command::List);

    const char *run[] = {"padc",     "run",      "fig09", "overall",
                         "--threads", "3",       "--seed", "42",
                         "--format", "json",     "--out",  "/tmp/x",
                         "--resume", "/tmp/j.jsonl", "--workers", "4"};
    ASSERT_TRUE(parseDriverArgs(16, run, &options, &error)) << error;
    EXPECT_EQ(options.command, DriverOptions::Command::Run);
    ASSERT_EQ(options.selectors.size(), 2u);
    EXPECT_EQ(options.selectors[0], "fig09");
    EXPECT_EQ(options.threads, 3u);
    EXPECT_EQ(options.workers, 4u);
    ASSERT_TRUE(options.seed.has_value());
    EXPECT_EQ(*options.seed, 42u);
    EXPECT_EQ(options.format, DriverOptions::Format::Json);
    EXPECT_EQ(options.out_dir, "/tmp/x");
    EXPECT_EQ(options.resume_path, "/tmp/j.jsonl");
    EXPECT_FALSE(options.trace);
    EXPECT_FALSE(options.timeseries);

    const char *telem[] = {"padc",          "run",
                           "smoke",         "--trace=/tmp/t.json",
                           "--timeseries",  "--trace-limit",
                           "512"};
    ASSERT_TRUE(parseDriverArgs(7, telem, &options, &error)) << error;
    EXPECT_TRUE(options.trace);
    EXPECT_EQ(options.trace_path, "/tmp/t.json");
    EXPECT_TRUE(options.timeseries);
    EXPECT_TRUE(options.timeseries_path.empty());
    EXPECT_EQ(options.trace_limit, 512u);

    const char *telem2[] = {"padc", "run", "smoke",
                            "--timeseries=/tmp/ts.csv",
                            "--trace-limit=0", "--trace"};
    ASSERT_TRUE(parseDriverArgs(6, telem2, &options, &error)) << error;
    EXPECT_TRUE(options.timeseries);
    EXPECT_EQ(options.timeseries_path, "/tmp/ts.csv");
    EXPECT_EQ(options.trace_limit, 0u); // 0 = count-only tracing
    EXPECT_TRUE(options.trace);
    EXPECT_TRUE(options.trace_path.empty());
}

TEST(ParseDriverArgs, Rejections)
{
    DriverOptions options;
    std::string error;
    const auto fails = [&](std::vector<const char *> argv) {
        argv.insert(argv.begin(), "padc");
        error.clear();
        const bool ok = parseDriverArgs(
            static_cast<int>(argv.size()), argv.data(), &options,
            &error);
        EXPECT_FALSE(error.empty());
        return !ok;
    };
    EXPECT_TRUE(fails({}));
    EXPECT_TRUE(fails({"frobnicate"}));
    EXPECT_TRUE(fails({"run"}));
    EXPECT_TRUE(fails({"run", "smoke", "--threads", "0"}));
    EXPECT_TRUE(fails({"run", "smoke", "--threads", "nope"}));
    EXPECT_TRUE(fails({"run", "smoke", "--threads"}));
    EXPECT_TRUE(fails({"run", "smoke", "--workers", "nope"}));
    EXPECT_TRUE(fails({"run", "smoke", "--workers", "-1"}));
    EXPECT_TRUE(fails({"run", "smoke", "--workers", "1025"}));
    EXPECT_TRUE(fails({"run", "smoke", "--workers"}));
    EXPECT_TRUE(fails({"run", "smoke", "--seed", "-1"}));
    EXPECT_TRUE(fails({"run", "smoke", "--format", "xml"}));
    EXPECT_TRUE(fails({"run", "smoke", "--frob"}));
    EXPECT_TRUE(fails({"list", "stray"}));
    EXPECT_TRUE(fails({"run", "smoke", "--trace-limit", "nope"}));
    EXPECT_TRUE(fails({"run", "smoke", "--trace-limit", "-1"}));
    EXPECT_TRUE(fails({"run", "smoke", "--trace-limit"}));
    EXPECT_TRUE(fails({"run", "smoke", "--trace-limit=1x"}));
    EXPECT_TRUE(fails({"run", "smoke", "--trace="}));
    EXPECT_TRUE(fails({"run", "smoke", "--timeseries="}));
}

TEST(DriverList, EnumeratesEveryExperimentExactlyOnce)
{
    std::string out, err;
    ASSERT_EQ(runDriver({"list"}, &out, &err), 0) << err;

    // First whitespace-delimited token of each line is the name.
    std::set<std::string> listed;
    std::istringstream lines(out);
    std::string line;
    std::size_t count = 0;
    while (std::getline(lines, line)) {
        if (line.empty())
            continue;
        std::istringstream fields(line);
        std::string name;
        fields >> name;
        EXPECT_TRUE(listed.insert(name).second)
            << "duplicate listing: " << name;
        ++count;
    }
    const auto all = ExperimentRegistry::instance().all();
    EXPECT_EQ(count, all.size());
    for (const Experiment *experiment : all)
        EXPECT_EQ(listed.count(experiment->info.name), 1u)
            << experiment->info.name;
}

TEST(DriverRun, UnknownSelectorFailsWithSuggestion)
{
    std::string out, err;
    EXPECT_EQ(runDriver({"run", "fig9"}, &out, &err), 2);
    EXPECT_NE(err.find("unknown experiment"), std::string::npos) << err;
    EXPECT_NE(err.find("did you mean"), std::string::npos) << err;
    EXPECT_NE(err.find("fig"), std::string::npos) << err;

    // An unknown glob / tag fails the same way, before running anything.
    EXPECT_EQ(runDriver({"run", "smoke", "zz_no_such*"}, &out, &err), 2);
    EXPECT_NE(err.find("unknown experiment"), std::string::npos) << err;
}

TEST(DriverRun, JsonFormatIsParseableAndStructured)
{
    const auto dir = freshOutDir("json");
    std::string out, err;
    ASSERT_EQ(runDriver({"run", "smoke", "--format", "json", "--out",
                         dir.string()},
                        &out, &err),
              0)
        << err;

    JsonValue root;
    std::string error;
    ASSERT_TRUE(parseJson(out, &root, &error)) << error;
    ASSERT_TRUE(root.isObject());
    EXPECT_EQ(root.find("schema")->string, "padc-bench-results-v1");
    ASSERT_TRUE(root.find("results")->isArray());
    ASSERT_EQ(root.find("results")->array.size(), 1u);

    const JsonValue &result = root.find("results")->array[0];
    EXPECT_EQ(result.find("name")->string, "smoke");
    ASSERT_NE(result.find("config_hash"), nullptr);
    EXPECT_TRUE(std::regex_match(result.find("config_hash")->string,
                                 std::regex("[0-9a-f]{16}")));
    // The smoke experiment is a 2-point sweep with per-point status.
    ASSERT_TRUE(result.find("points")->isArray());
    ASSERT_EQ(result.find("points")->array.size(), 2u);
    for (const JsonValue &point : result.find("points")->array) {
        ASSERT_NE(point.find("status"), nullptr);
        EXPECT_TRUE(point.find("status")->isString());
        EXPECT_NE(point.find("metrics")->object.size(), 0u);
    }
    std::filesystem::remove_all(dir);
}

// --- schema-snapshot validation ------------------------------------

std::string
kindName(JsonValue::Kind kind)
{
    switch (kind) {
      case JsonValue::Kind::Null: return "null";
      case JsonValue::Kind::Bool: return "boolean";
      case JsonValue::Kind::Number: return "number";
      case JsonValue::Kind::String: return "string";
      case JsonValue::Kind::Array: return "array";
      case JsonValue::Kind::Object: return "object";
    }
    return "?";
}

/**
 * Validate @p value against the subset of JSON Schema the snapshot
 * uses: type, required, properties, items, const, pattern.
 */
void
validateAgainst(const JsonValue &schema, const JsonValue &value,
                const std::string &where)
{
    if (const JsonValue *type = schema.find("type"))
        EXPECT_EQ(kindName(value.kind), type->string) << where;
    if (const JsonValue *expected = schema.find("const"))
        EXPECT_EQ(value.string, expected->string) << where;
    if (const JsonValue *pattern = schema.find("pattern"))
        EXPECT_TRUE(std::regex_search(value.string,
                                      std::regex(pattern->string)))
            << where << ": '" << value.string << "' !~ "
            << pattern->string;
    if (const JsonValue *required = schema.find("required")) {
        for (const JsonValue &key : required->array)
            EXPECT_NE(value.find(key.string), nullptr)
                << where << ": missing member '" << key.string << "'";
    }
    if (const JsonValue *properties = schema.find("properties")) {
        for (const auto &[key, sub] : properties->object) {
            if (const JsonValue *member = value.find(key))
                validateAgainst(sub, *member, where + "." + key);
        }
    }
    if (const JsonValue *items = schema.find("items")) {
        for (std::size_t i = 0; i < value.array.size(); ++i)
            validateAgainst(*items, value.array[i],
                            where + "[" + std::to_string(i) + "]");
    }
}

TEST(DriverRun, EmittedFileMatchesSchemaSnapshot)
{
    const auto dir = freshOutDir("schema");
    std::string out, err;
    ASSERT_EQ(runDriver({"run", "smoke", "--out", dir.string()}, &out,
                        &err),
              0)
        << err;
    // Text mode still prints the experiment's rows.
    EXPECT_NE(out.find("Smoke test"), std::string::npos);

    const auto read = [](const std::filesystem::path &path) {
        std::ifstream in(path);
        EXPECT_TRUE(in.good()) << path;
        std::ostringstream text;
        text << in.rdbuf();
        return text.str();
    };

    JsonValue schema;
    std::string error;
    ASSERT_TRUE(parseJson(read(PADC_SCHEMA_PATH), &schema, &error))
        << error;
    JsonValue document;
    ASSERT_TRUE(
        parseJson(read(dir / "BENCH_smoke.json"), &document, &error))
        << error;
    validateAgainst(schema, document, "$");
    std::filesystem::remove_all(dir);
}

} // namespace
} // namespace padc::exp
