#include "exp/registry.hh"

#include <algorithm>
#include <set>
#include <stdexcept>

#include <gtest/gtest.h>

namespace padc::exp
{
namespace
{

TEST(GlobMatch, Basics)
{
    EXPECT_TRUE(globMatch("fig09", "fig09"));
    EXPECT_FALSE(globMatch("fig09", "fig areas"));
    EXPECT_TRUE(globMatch("fig*", "fig09"));
    EXPECT_TRUE(globMatch("*", "anything"));
    EXPECT_TRUE(globMatch("fig?9", "fig09"));
    EXPECT_FALSE(globMatch("fig?9", "fig9"));
    EXPECT_TRUE(globMatch("*09", "fig09"));
    EXPECT_TRUE(globMatch("f*g*9", "fig09"));
    EXPECT_FALSE(globMatch("fig*", "tab07"));
    EXPECT_TRUE(globMatch("", ""));
    EXPECT_FALSE(globMatch("", "x"));
}

// The real experiment set is linked in (padc_experiments), so these
// cover the production registrations, not a synthetic fixture.
TEST(Registry, AllExperimentsAreRegisteredAndSorted)
{
    const auto all = ExperimentRegistry::instance().all();
    ASSERT_GE(all.size(), 27u);
    std::set<std::string> names;
    for (std::size_t i = 0; i < all.size(); ++i) {
        EXPECT_NE(all[i]->run, nullptr);
        EXPECT_FALSE(all[i]->info.anchor.empty());
        names.insert(all[i]->info.name);
        if (i > 0)
            EXPECT_LT(all[i - 1]->info.name, all[i]->info.name);
    }
    EXPECT_EQ(names.size(), all.size()) << "duplicate names registered";
    for (const char *name :
         {"fig01", "fig09", "fig16", "fig17", "tab07", "tab09",
          "abl_thresholds", "smoke"})
        EXPECT_EQ(names.count(name), 1u) << name;
}

TEST(Registry, FindAndMatch)
{
    const auto &registry = ExperimentRegistry::instance();
    ASSERT_NE(registry.find("fig09"), nullptr);
    EXPECT_EQ(registry.find("fig09")->info.name, "fig09");
    EXPECT_EQ(registry.find("no_such"), nullptr);

    // Exact name.
    const auto exact = registry.match("fig09");
    ASSERT_EQ(exact.size(), 1u);
    EXPECT_EQ(exact[0]->info.name, "fig09");

    // Glob over names, name-sorted.
    const auto glob = registry.match("fig1*");
    ASSERT_GE(glob.size(), 4u);
    for (std::size_t i = 1; i < glob.size(); ++i)
        EXPECT_LT(glob[i - 1]->info.name, glob[i]->info.name);
    EXPECT_EQ(glob[0]->info.name, "fig10");

    // Tag selection.
    const auto tagged = registry.match("overall");
    ASSERT_GE(tagged.size(), 3u);
    for (const Experiment *experiment : tagged) {
        const auto &tags = experiment->info.tags;
        EXPECT_NE(std::find(tags.begin(), tags.end(), "overall"),
                  tags.end());
    }

    EXPECT_TRUE(registry.match("no_such_selector").empty());
}

TEST(Registry, ClosestNameSuggestsTypoFix)
{
    const auto &registry = ExperimentRegistry::instance();
    EXPECT_EQ(registry.closestName("fig16"), "fig16");
    EXPECT_EQ(registry.closestName("smoek"), "smoke");
    EXPECT_EQ(registry.closestName("tab7"), "tab07");
    EXPECT_FALSE(registry.closestName("zzzzz").empty());
}

TEST(Registry, DuplicateNameThrows)
{
    auto &registry = ExperimentRegistry::instance();
    const auto noop = [](ExperimentContext &) {};
    registry.add({"zz_registry_test", "none", "", "", {}}, noop);
    EXPECT_THROW(registry.add({"zz_registry_test", "none", "", "", {}},
                              noop),
                 std::logic_error);
}

} // namespace
} // namespace padc::exp
