/**
 * @file
 * Fleet-observability integration tests of `padc run --progress` and
 * `padc status`, driving the real driver binary (PADC_DRIVER_BIN) as
 * subprocesses with stdout and stderr captured SEPARATELY — the whole
 * point of the --progress contract is that the machine-readable stdout
 * streams stay byte-clean while the human-facing progress line, the
 * events.jsonl log, and the status.json snapshot ride elsewhere.
 *
 * Covers the ISSUE 9 acceptance scenarios: fault-injected sweeps show
 * their retries in the progress line and the event log, status.json
 * stays a complete schema-valid snapshot across a SIGKILLed
 * supervisor, the event log tail-repairs on resume, and `padc status`
 * renders both live and post-mortem state.
 */

#include <fcntl.h>
#include <signal.h>
#include <spawn.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "exp/json.hh"
#include "obs/events.hh"
#include "obs/status.hh"

extern char **environ;

namespace padc::exp
{
namespace
{

std::filesystem::path
freshDir(const std::string &name)
{
    const auto dir = std::filesystem::temp_directory_path() /
                     ("padc_obs_driver_" + name + "." +
                      std::to_string(::getpid()));
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

/**
 * Spawn PADC_DRIVER_BIN with stdout redirected to @p out_log and
 * stderr to @p err_log (separate files — the stdout-hygiene tests
 * depend on the split). Returns the child pid (or -1).
 */
pid_t
spawnDriver(const std::vector<std::string> &args,
            const std::vector<std::string> &env_extra,
            const std::string &out_log, const std::string &err_log)
{
    std::vector<std::string> argv_store = {PADC_DRIVER_BIN};
    argv_store.insert(argv_store.end(), args.begin(), args.end());
    std::vector<char *> argv;
    for (auto &arg : argv_store)
        argv.push_back(arg.data());
    argv.push_back(nullptr);

    std::vector<std::string> env_store;
    for (char **e = environ; *e != nullptr; ++e)
        env_store.push_back(*e);
    env_store.insert(env_store.end(), env_extra.begin(),
                     env_extra.end());
    std::vector<char *> envp;
    for (auto &entry : env_store)
        envp.push_back(entry.data());
    envp.push_back(nullptr);

    posix_spawn_file_actions_t actions;
    posix_spawn_file_actions_init(&actions);
    posix_spawn_file_actions_addopen(&actions, STDOUT_FILENO,
                                     out_log.c_str(),
                                     O_WRONLY | O_CREAT | O_TRUNC, 0644);
    posix_spawn_file_actions_addopen(&actions, STDERR_FILENO,
                                     err_log.c_str(),
                                     O_WRONLY | O_CREAT | O_TRUNC, 0644);
    pid_t pid = -1;
    const int rc = ::posix_spawn(&pid, PADC_DRIVER_BIN, &actions,
                                 nullptr, argv.data(), envp.data());
    posix_spawn_file_actions_destroy(&actions);
    return rc == 0 ? pid : -1;
}

/** Wait for @p pid; exit status, or 128+signal when killed. */
int
waitDriver(pid_t pid)
{
    int status = 0;
    while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
    }
    if (WIFEXITED(status))
        return WEXITSTATUS(status);
    if (WIFSIGNALED(status))
        return 128 + WTERMSIG(status);
    return -1;
}

int
runDriver(const std::vector<std::string> &args,
          const std::vector<std::string> &env_extra,
          const std::string &out_log, const std::string &err_log)
{
    const pid_t pid = spawnDriver(args, env_extra, out_log, err_log);
    EXPECT_GT(pid, 0);
    return pid > 0 ? waitDriver(pid) : -1;
}

std::string
slurp(const std::filesystem::path &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

/** Journal lines on disk (complete, newline-terminated ones). */
std::size_t
journalLines(const std::string &path)
{
    const std::string text = slurp(path);
    std::size_t lines = 0;
    for (const char c : text)
        lines += c == '\n' ? 1 : 0;
    return lines;
}

/** Poll until the journal holds @p want lines (worker progress gate). */
bool
awaitJournalLines(const std::string &path, std::size_t want)
{
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(60);
    while (std::chrono::steady_clock::now() < deadline) {
        if (journalLines(path) >= want)
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return false;
}

std::size_t
countEvents(const std::vector<obs::Event> &events,
            const std::string &type)
{
    std::size_t n = 0;
    for (const obs::Event &event : events)
        n += event.type == type ? 1 : 0;
    return n;
}

TEST(ObsDriver, ProgressKeepsJsonStdoutByteClean)
{
    // S1: with --format json, --progress must not perturb stdout by a
    // single byte — the whole stream is exactly one parseable JSON
    // document, and every progress marker lands on stderr.
    const auto dir = freshDir("stdout_clean");
    ASSERT_EQ(runDriver({"run", "smoke_grid", "--format", "json",
                         "--progress", "--out", dir.string()},
                        {}, (dir / "stdout.log").string(),
                        (dir / "stderr.log").string()),
              0);

    const std::string out = slurp(dir / "stdout.log");
    const std::string err = slurp(dir / "stderr.log");

    // stdout is one JSON document and nothing else.
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(out, &doc, &error)) << error;
    EXPECT_EQ(doc.find("schema")->string, "padc-bench-results-v1");
    ASSERT_FALSE(out.empty());
    EXPECT_EQ(out.front(), '{');
    EXPECT_EQ(out.substr(out.find_last_not_of(" \n")).front(), '}');
    EXPECT_EQ(out.find("[padc]"), std::string::npos);

    // The progress stream went to stderr instead.
    EXPECT_NE(err.find("[padc] smoke_grid"), std::string::npos);
    EXPECT_NE(err.find("9/9"), std::string::npos);

    // And the sidecar files exist in --out.
    EXPECT_TRUE(std::filesystem::exists(dir / "status.json"));
    EXPECT_TRUE(std::filesystem::exists(dir / "events.jsonl"));
    std::filesystem::remove_all(dir);
}

TEST(ObsDriver, WithoutProgressNoSidecarFilesAppear)
{
    // Default runs must stay exactly as before: no monitor, no
    // events.jsonl, no status.json.
    const auto dir = freshDir("no_progress");
    ASSERT_EQ(runDriver({"run", "smoke_grid", "--out", dir.string()}, {},
                        (dir / "stdout.log").string(),
                        (dir / "stderr.log").string()),
              0);
    EXPECT_FALSE(std::filesystem::exists(dir / "status.json"));
    EXPECT_FALSE(std::filesystem::exists(dir / "events.jsonl"));
    std::filesystem::remove_all(dir);
}

TEST(ObsDriver, CrashRetriesShowInProgressLineEventsAndStatus)
{
    // Acceptance: crash:3 under --workers --progress surfaces the
    // retries on every observability surface.
    const auto dir = freshDir("crash");
    ASSERT_EQ(runDriver({"run", "smoke_grid", "--workers", "4",
                         "--progress", "--out", dir.string()},
                        {"PADC_FAULT_INJECT=crash:3",
                         "PADC_RETRY_BACKOFF_MS=1"},
                        (dir / "stdout.log").string(),
                        (dir / "stderr.log").string()),
              0);

    // Progress line (stderr): final snapshot shows the three retries.
    const std::string err = slurp(dir / "stderr.log");
    EXPECT_NE(err.find("retries 3"), std::string::npos);

    // Event log: three point_retry records plus the worker churn.
    std::vector<obs::Event> events;
    std::string error;
    ASSERT_TRUE(obs::EventLog::load((dir / "events.jsonl").string(),
                                    &events, &error))
        << error;
    EXPECT_EQ(countEvents(events, "sweep_start"), 1u);
    EXPECT_EQ(countEvents(events, "point_retry"), 3u);
    EXPECT_EQ(countEvents(events, "point_complete"), 9u);
    EXPECT_GE(countEvents(events, "worker_spawn"), 4u);
    EXPECT_GE(countEvents(events, "worker_exit"), 3u);
    EXPECT_EQ(countEvents(events, "sweep_finish"), 1u);

    // status.json: finished, with the same counts.
    obs::SweepStatus status;
    ASSERT_TRUE(obs::loadStatusFile((dir / "status.json").string(),
                                    &status, &error))
        << error;
    EXPECT_EQ(status.state, "finished");
    EXPECT_EQ(status.experiment, "smoke_grid");
    EXPECT_EQ(status.done, 9u);
    EXPECT_EQ(status.executed, 9u);
    EXPECT_EQ(status.retries, 3u);
    EXPECT_EQ(status.quarantined, 0u);
    std::filesystem::remove_all(dir);
}

TEST(ObsDriver, StatusSubcommandRendersFinishedSweep)
{
    const auto dir = freshDir("status_cmd");
    ASSERT_EQ(runDriver({"run", "smoke_grid", "--progress", "--out",
                         dir.string()},
                        {}, (dir / "stdout.log").string(),
                        (dir / "stderr.log").string()),
              0);

    ASSERT_EQ(runDriver({"status", dir.string()}, {},
                        (dir / "status_out.log").string(),
                        (dir / "status_err.log").string()),
              0);
    const std::string report = slurp(dir / "status_out.log");
    EXPECT_NE(report.find("sweep 'smoke_grid'"), std::string::npos);
    EXPECT_NE(report.find("finished"), std::string::npos);
    EXPECT_NE(report.find("9/9"), std::string::npos);
    std::filesystem::remove_all(dir);
}

TEST(ObsDriver, StatusSubcommandFailsCleanlyWithoutStatusFile)
{
    const auto dir = freshDir("status_missing");
    EXPECT_EQ(runDriver({"status", dir.string()}, {},
                        (dir / "out.log").string(),
                        (dir / "err.log").string()),
              1);
    EXPECT_FALSE(slurp(dir / "err.log").empty());
    std::filesystem::remove_all(dir);
}

TEST(ObsDriver, KilledSupervisorLeavesValidStatusAndRepairableLog)
{
    // S4: kill -9 the supervisor mid-sweep. The atomic-rename writer
    // guarantees status.json is a complete schema-valid snapshot, the
    // event log loses at most its torn tail, and a resumed run repairs
    // the tail and appends a sweep_resume record.
    const auto dir = freshDir("kill9");
    const std::string journal = (dir / "sweep.padcjournal").string();
    const std::string events_path = (dir / "events.jsonl").string();

    // hang:9 wedges a worker on the last point while the other eight
    // complete; the huge timeout keeps the heartbeat out of the way.
    const pid_t pid =
        spawnDriver({"run", "smoke_grid", "--workers", "2", "--progress",
                     "--resume", journal, "--out", dir.string()},
                    {"PADC_FAULT_INJECT=hang:9",
                     "PADC_WORKER_TIMEOUT_MS=600000"},
                    (dir / "out1.log").string(),
                    (dir / "err1.log").string());
    ASSERT_GT(pid, 0);
    ASSERT_TRUE(awaitJournalLines(journal, 8));

    // Live observation while the sweep hangs: status.json is already
    // a complete snapshot and `padc status` renders it.
    obs::SweepStatus live;
    std::string error;
    ASSERT_TRUE(obs::loadStatusFile((dir / "status.json").string(),
                                    &live, &error))
        << error;
    EXPECT_EQ(live.state, "running");
    EXPECT_EQ(live.experiment, "smoke_grid");
    EXPECT_EQ(live.total, 9u);
    ASSERT_EQ(runDriver({"status", dir.string()}, {},
                        (dir / "live_out.log").string(),
                        (dir / "live_err.log").string()),
              0);
    EXPECT_NE(slurp(dir / "live_out.log").find("running"),
              std::string::npos);

    ASSERT_EQ(::kill(pid, SIGKILL), 0);
    EXPECT_EQ(waitDriver(pid), 128 + SIGKILL);

    // Post-mortem: the snapshot is still complete and schema-valid.
    obs::SweepStatus dead;
    ASSERT_TRUE(obs::loadStatusFile((dir / "status.json").string(),
                                    &dead, &error))
        << error;
    EXPECT_EQ(dead.state, "running"); // nobody got to write "finished"
    EXPECT_EQ(dead.total, 9u);

    // Simulate the kill having torn the event log mid-write.
    {
        std::ofstream torn(events_path,
                           std::ios::app | std::ios::binary);
        torn << "{\"padc\":\"padc-run-event-v1\",\"ev\":\"point_";
    }

    // Resume fault-free with --progress: the log tail-repairs, the
    // journaled points replay, and the monitor records a sweep_resume.
    ASSERT_EQ(runDriver({"run", "smoke_grid", "--workers", "2",
                         "--progress", "--resume", journal, "--out",
                         dir.string()},
                        {}, (dir / "out2.log").string(),
                        (dir / "err2.log").string()),
              0);
    EXPECT_EQ(journalLines(journal), 9u);

    std::vector<obs::Event> events;
    ASSERT_TRUE(obs::EventLog::load(events_path, &events, &error))
        << error;
    EXPECT_EQ(countEvents(events, "sweep_start"), 1u);
    EXPECT_EQ(countEvents(events, "sweep_resume"), 1u);
    EXPECT_EQ(countEvents(events, "sweep_finish"), 1u);
    // 8 replays + 1 genuine completion arrive after the resume.
    EXPECT_EQ(countEvents(events, "point_replay"), 8u);
    EXPECT_GE(countEvents(events, "point_complete"), 9u);

    obs::SweepStatus final_status;
    ASSERT_TRUE(obs::loadStatusFile((dir / "status.json").string(),
                                    &final_status, &error))
        << error;
    EXPECT_EQ(final_status.state, "finished");
    EXPECT_EQ(final_status.done, 9u);
    EXPECT_EQ(final_status.replayed, 8u);
    EXPECT_EQ(final_status.executed, 1u);
    std::filesystem::remove_all(dir);
}

} // namespace
} // namespace padc::exp
