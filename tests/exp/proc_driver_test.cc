/**
 * @file
 * Kill-matrix integration tests of `padc run --workers N`, driving the
 * real driver binary (PADC_DRIVER_BIN) as subprocesses: fault-injected
 * pooled runs must be bit-identical to fault-free in-thread runs,
 * poison points must surface as quarantined failures, a SIGKILLed
 * supervisor must resume exactly-once from its journal, and
 * SIGINT/SIGTERM must drain gracefully into a partial BENCH file.
 */

#include <fcntl.h>
#include <signal.h>
#include <spawn.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "exp/json.hh"

extern char **environ;

namespace padc::exp
{
namespace
{

std::filesystem::path
freshDir(const std::string &name)
{
    // Unique per process: ctest runs this suite both as individual
    // cases and as one whole-binary smoke test, concurrently.
    const auto dir = std::filesystem::temp_directory_path() /
                     ("padc_proc_driver_" + name + "." +
                      std::to_string(::getpid()));
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

/**
 * Spawn PADC_DRIVER_BIN with extra environment entries, stdout/stderr
 * redirected to @p log. Returns the child pid (or -1).
 */
pid_t
spawnDriver(const std::vector<std::string> &args,
            const std::vector<std::string> &env_extra,
            const std::string &log)
{
    std::vector<std::string> argv_store = {PADC_DRIVER_BIN};
    argv_store.insert(argv_store.end(), args.begin(), args.end());
    std::vector<char *> argv;
    for (auto &arg : argv_store)
        argv.push_back(arg.data());
    argv.push_back(nullptr);

    std::vector<std::string> env_store;
    for (char **e = environ; *e != nullptr; ++e)
        env_store.push_back(*e);
    env_store.insert(env_store.end(), env_extra.begin(),
                     env_extra.end());
    std::vector<char *> envp;
    for (auto &entry : env_store)
        envp.push_back(entry.data());
    envp.push_back(nullptr);

    posix_spawn_file_actions_t actions;
    posix_spawn_file_actions_init(&actions);
    posix_spawn_file_actions_addopen(&actions, STDOUT_FILENO,
                                     log.c_str(),
                                     O_WRONLY | O_CREAT | O_TRUNC, 0644);
    posix_spawn_file_actions_adddup2(&actions, STDOUT_FILENO,
                                     STDERR_FILENO);
    pid_t pid = -1;
    const int rc = ::posix_spawn(&pid, PADC_DRIVER_BIN, &actions,
                                 nullptr, argv.data(), envp.data());
    posix_spawn_file_actions_destroy(&actions);
    return rc == 0 ? pid : -1;
}

/** Wait for @p pid; exit status, or 128+signal when killed. */
int
waitDriver(pid_t pid)
{
    int status = 0;
    while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
    }
    if (WIFEXITED(status))
        return WEXITSTATUS(status);
    if (WIFSIGNALED(status))
        return 128 + WTERMSIG(status);
    return -1;
}

int
runDriver(const std::vector<std::string> &args,
          const std::vector<std::string> &env_extra,
          const std::string &log)
{
    const pid_t pid = spawnDriver(args, env_extra, log);
    EXPECT_GT(pid, 0);
    return pid > 0 ? waitDriver(pid) : -1;
}

std::string
slurp(const std::filesystem::path &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

JsonValue
loadBench(const std::filesystem::path &dir)
{
    JsonValue doc;
    std::string error;
    const auto path = dir / "BENCH_smoke_grid.json";
    EXPECT_TRUE(parseJson(slurp(path), &doc, &error))
        << path << ": " << error;
    return doc;
}

/** Journal lines on disk (complete, newline-terminated ones). */
std::size_t
journalLines(const std::string &path)
{
    const std::string text = slurp(path);
    std::size_t lines = 0;
    for (const char c : text)
        lines += c == '\n' ? 1 : 0;
    return lines;
}

/** Poll until the journal holds @p want lines (worker progress gate). */
bool
awaitJournalLines(const std::string &path, std::size_t want)
{
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(60);
    while (std::chrono::steady_clock::now() < deadline) {
        if (journalLines(path) >= want)
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return false;
}

/**
 * Compare the simulation-outcome half of two BENCH documents: key,
 * label, status, detail, cycles, and every metric value of every
 * point. Deliberately ignores attempts/last_error (those describe the
 * execution, which fault injection legitimately changes) and the
 * wall-clock/profile blocks.
 */
void
expectSamePoints(const JsonValue &a, const JsonValue &b)
{
    const JsonValue *pa = a.find("points");
    const JsonValue *pb = b.find("points");
    ASSERT_NE(pa, nullptr);
    ASSERT_NE(pb, nullptr);
    ASSERT_EQ(pa->array.size(), pb->array.size());
    for (std::size_t i = 0; i < pa->array.size(); ++i) {
        const JsonValue &x = pa->array[i];
        const JsonValue &y = pb->array[i];
        EXPECT_EQ(x.find("key")->string, y.find("key")->string) << i;
        EXPECT_EQ(x.find("label")->string, y.find("label")->string) << i;
        EXPECT_EQ(x.find("status")->string, y.find("status")->string)
            << i;
        EXPECT_EQ(x.find("detail")->string, y.find("detail")->string)
            << i;
        EXPECT_EQ(x.find("cycles")->number, y.find("cycles")->number)
            << i;
        const JsonValue *ma = x.find("metrics");
        const JsonValue *mb = y.find("metrics");
        ASSERT_EQ(ma->object.size(), mb->object.size()) << i;
        for (const auto &[name, value] : ma->object) {
            const JsonValue *other = mb->find(name);
            ASSERT_NE(other, nullptr) << i << "." << name;
            EXPECT_EQ(value.number, other->number) << i << "." << name;
        }
    }
}

TEST(ProcDriver, CrashFaultedWorkersMatchInThreadBitIdentically)
{
    const auto ref_dir = freshDir("ref");
    const auto pool_dir = freshDir("pool");
    ASSERT_EQ(runDriver({"run", "smoke_grid", "--workers", "0", "--out",
                         ref_dir.string()},
                        {}, (ref_dir / "log.txt").string()),
              0);
    ASSERT_EQ(runDriver({"run", "smoke_grid", "--workers", "2", "--out",
                         pool_dir.string()},
                        {"PADC_FAULT_INJECT=crash:3",
                         "PADC_RETRY_BACKOFF_MS=1"},
                        (pool_dir / "log.txt").string()),
              0);

    const JsonValue ref = loadBench(ref_dir);
    const JsonValue pool = loadBench(pool_dir);
    expectSamePoints(ref, pool);

    // crash:3 fires on indices 2, 5, 8: those points must show the
    // retry in their attempt count and crash diagnostics.
    std::size_t retried = 0;
    for (const JsonValue &point : pool.find("points")->array) {
        if (point.find("attempts")->number > 1.0) {
            ++retried;
            EXPECT_NE(point.find("last_error")->string.find("signal 9"),
                      std::string::npos);
        }
    }
    EXPECT_EQ(retried, 3u);
    EXPECT_NE(slurp(pool_dir / "log.txt")
                  .find("succeeded after worker retries"),
              std::string::npos);

    std::filesystem::remove_all(ref_dir);
    std::filesystem::remove_all(pool_dir);
}

TEST(ProcDriver, PoisonPointIsQuarantinedWithDiagnostics)
{
    const auto dir = freshDir("poison");
    EXPECT_EQ(runDriver({"run", "smoke_grid", "--workers", "2", "--out",
                         dir.string()},
                        {"PADC_FAULT_INJECT=poison:4",
                         "PADC_RETRY_BACKOFF_MS=1"},
                        (dir / "log.txt").string()),
              1);

    const JsonValue bench = loadBench(dir);
    const auto &points = bench.find("points")->array;
    ASSERT_EQ(points.size(), 9u);
    EXPECT_EQ(points[4].find("status")->string, "failed");
    EXPECT_NE(points[4].find("detail")->string.find("quarantined"),
              std::string::npos);
    EXPECT_NE(points[4].find("detail")->string.find("signal 9"),
              std::string::npos);
    for (const std::size_t i : {0u, 1u, 2u, 3u, 5u, 6u, 7u, 8u})
        EXPECT_EQ(points[i].find("status")->string, "ok") << i;
    std::filesystem::remove_all(dir);
}

TEST(ProcDriver, KilledSupervisorResumesExactlyOnce)
{
    const auto ref_dir = freshDir("kill_ref");
    const auto dir = freshDir("kill");
    const std::string journal = (dir / "sweep.padcjournal").string();
    ASSERT_EQ(runDriver({"run", "smoke_grid", "--workers", "0", "--out",
                         ref_dir.string()},
                        {}, (ref_dir / "log.txt").string()),
              0);

    // hang:9 wedges the worker on the last point (index 8) while the
    // other eight complete and hit the journal; SIGKILL the supervisor
    // mid-hang, exactly like a machine reaping a runaway job.
    const pid_t pid =
        spawnDriver({"run", "smoke_grid", "--workers", "2", "--resume",
                     journal, "--out", dir.string()},
                    {"PADC_FAULT_INJECT=hang:9",
                     "PADC_WORKER_TIMEOUT_MS=600000"},
                    (dir / "log1.txt").string());
    ASSERT_GT(pid, 0);
    ASSERT_TRUE(awaitJournalLines(journal, 8));
    ASSERT_EQ(::kill(pid, SIGKILL), 0);
    EXPECT_EQ(waitDriver(pid), 128 + SIGKILL);

    // Resume fault-free: the eight journaled points must replay
    // (attempts 0), only the killed point runs, and the merged result
    // is bit-identical to the straight in-thread run.
    ASSERT_EQ(runDriver({"run", "smoke_grid", "--workers", "2",
                         "--resume", journal, "--out", dir.string()},
                        {}, (dir / "log2.txt").string()),
              0);
    EXPECT_EQ(journalLines(journal), 9u);

    const JsonValue resumed = loadBench(dir);
    expectSamePoints(loadBench(ref_dir), resumed);
    std::size_t replayed = 0;
    std::size_t executed = 0;
    for (const JsonValue &point : resumed.find("points")->array) {
        if (point.find("attempts")->number == 0.0)
            ++replayed;
        else
            ++executed;
    }
    EXPECT_EQ(replayed, 8u);
    EXPECT_EQ(executed, 1u);

    std::filesystem::remove_all(ref_dir);
    std::filesystem::remove_all(dir);
}

TEST(ProcDriver, TestInterruptHookWritesPartialBenchAndExits130)
{
    const auto dir = freshDir("interrupt");
    EXPECT_EQ(runDriver({"run", "smoke_grid", "--workers", "0", "--out",
                         dir.string()},
                        {"PADC_TEST_INTERRUPT_AFTER=1",
                         "PADC_THREADS=1"},
                        (dir / "log.txt").string()),
              130);

    const JsonValue bench = loadBench(dir);
    ASSERT_NE(bench.find("interrupted"), nullptr);
    EXPECT_TRUE(bench.find("interrupted")->boolean);
    std::size_t ok = 0;
    std::size_t interrupted = 0;
    for (const JsonValue &point : bench.find("points")->array) {
        if (point.find("status")->string == "ok")
            ++ok;
        else if (point.find("detail")->string == "interrupted")
            ++interrupted;
    }
    EXPECT_EQ(ok, 1u);
    EXPECT_EQ(interrupted, 8u);
    std::filesystem::remove_all(dir);
}

TEST(ProcDriver, SigtermDrainsHungPoolGracefully)
{
    const auto dir = freshDir("sigterm");
    const std::string journal = (dir / "sweep.padcjournal").string();
    const pid_t pid =
        spawnDriver({"run", "smoke_grid", "--workers", "2", "--resume",
                     journal, "--out", dir.string()},
                    {"PADC_FAULT_INJECT=hang:9",
                     "PADC_WORKER_TIMEOUT_MS=600000"},
                    (dir / "log.txt").string());
    ASSERT_GT(pid, 0);
    ASSERT_TRUE(awaitJournalLines(journal, 8));
    ASSERT_EQ(::kill(pid, SIGTERM), 0);
    // Graceful: the driver kills the wedged worker rather than waiting
    // out its 10-minute timeout, flushes, and still writes the BENCH.
    EXPECT_EQ(waitDriver(pid), 130);

    const JsonValue bench = loadBench(dir);
    EXPECT_TRUE(bench.find("interrupted")->boolean);
    std::size_t interrupted = 0;
    for (const JsonValue &point : bench.find("points")->array)
        interrupted +=
            point.find("detail")->string == "interrupted" ? 1 : 0;
    EXPECT_GE(interrupted, 1u);
    EXPECT_EQ(journalLines(journal), 8u);
    std::filesystem::remove_all(dir);
}

} // namespace
} // namespace padc::exp
