#include "exp/json.hh"

#include <cmath>
#include <cstdlib>
#include <limits>

#include <gtest/gtest.h>

namespace padc::exp
{
namespace
{

TEST(JsonQuote, EscapesSpecials)
{
    EXPECT_EQ(jsonQuote("plain"), "\"plain\"");
    EXPECT_EQ(jsonQuote("a\"b\\c"), "\"a\\\"b\\\\c\"");
    EXPECT_EQ(jsonQuote("line\nbreak"), "\"line\\nbreak\"");
    EXPECT_EQ(jsonQuote(std::string(1, '\x01')), "\"\\u0001\"");
}

TEST(JsonNumber, RoundTripsBitExactly)
{
    for (const double value :
         {0.0, 1.0, -1.5, 0.1, 1.0 / 3.0, 123456789.123456789,
          std::numeric_limits<double>::max(),
          std::numeric_limits<double>::min()}) {
        const std::string text = jsonNumber(value);
        EXPECT_EQ(std::strtod(text.c_str(), nullptr), value) << text;
    }
    EXPECT_EQ(jsonNumber(std::numeric_limits<double>::infinity()),
              "null");
    EXPECT_EQ(jsonNumber(std::nan("")), "null");
}

TEST(JsonWriter, NestedDocument)
{
    JsonWriter writer;
    writer.beginObject();
    writer.member("name", "x");
    writer.member("n", std::uint64_t{7});
    writer.beginArray("items");
    writer.element("a");
    writer.element("b");
    writer.endArray();
    writer.beginObject("inner");
    writer.member("flag", true);
    writer.endObject();
    writer.endObject();

    JsonValue parsed;
    std::string error;
    ASSERT_TRUE(parseJson(writer.str(), &parsed, &error)) << error;
    ASSERT_TRUE(parsed.isObject());
    EXPECT_EQ(parsed.find("name")->string, "x");
    EXPECT_EQ(parsed.find("n")->number, 7.0);
    ASSERT_TRUE(parsed.find("items")->isArray());
    EXPECT_EQ(parsed.find("items")->array.size(), 2u);
    EXPECT_EQ(parsed.find("items")->array[1].string, "b");
    EXPECT_TRUE(parsed.find("inner")->find("flag")->boolean);
}

TEST(JsonParser, AcceptsScalarsAndRejectsGarbage)
{
    JsonValue value;
    ASSERT_TRUE(parseJson("  null ", &value));
    EXPECT_EQ(value.kind, JsonValue::Kind::Null);
    ASSERT_TRUE(parseJson("-12.5e2", &value));
    EXPECT_EQ(value.number, -1250.0);
    ASSERT_TRUE(parseJson("\"\\u0041\\n\"", &value));
    EXPECT_EQ(value.string, "A\n");
    ASSERT_TRUE(parseJson("[1, [2, 3], {\"k\": false}]", &value));
    EXPECT_EQ(value.array[1].array[1].number, 3.0);
    EXPECT_FALSE(value.array[2].find("k")->boolean);

    std::string error;
    EXPECT_FALSE(parseJson("", &value, &error));
    EXPECT_FALSE(parseJson("{", &value, &error));
    EXPECT_FALSE(parseJson("[1,]", &value, &error));
    EXPECT_FALSE(parseJson("{\"a\":1} trailing", &value, &error));
    EXPECT_FALSE(parseJson("nul", &value, &error));
    EXPECT_FALSE(parseJson("01", &value, &error));
}

TEST(JsonValue, FindOnNonObjectIsNull)
{
    JsonValue value;
    ASSERT_TRUE(parseJson("[1]", &value));
    EXPECT_EQ(value.find("x"), nullptr);
    ASSERT_TRUE(parseJson("{\"a\": 1}", &value));
    EXPECT_EQ(value.find("b"), nullptr);
    ASSERT_NE(value.find("a"), nullptr);
}

} // namespace
} // namespace padc::exp
