/**
 * @file
 * Unit and property tests for the stream prefetcher: allocation,
 * direction training, region-shift pacing, re-anchoring, and the
 * run-length -> accuracy relationship the workload profiles rely on.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "prefetch/stream_prefetcher.hh"

namespace padc::prefetch
{
namespace
{

PrefetcherConfig
config(std::uint32_t degree = 4, std::uint32_t distance = 16,
       std::uint32_t entries = 32)
{
    PrefetcherConfig cfg;
    cfg.kind = PrefetcherKind::Stream;
    cfg.degree = degree;
    cfg.distance = distance;
    cfg.stream_entries = entries;
    return cfg;
}

std::vector<Addr>
observe(Prefetcher &pf, Addr addr, bool miss = true,
        bool train_only = false)
{
    std::vector<Addr> out;
    pf.observe(addr, 0x400, miss, train_only, out);
    return out;
}

TEST(StreamTest, NoPrefetchOnFirstMiss)
{
    StreamPrefetcher pf(config());
    EXPECT_TRUE(observe(pf, lineToAddr(1000)).empty());
}

TEST(StreamTest, ArmingIssuesFirstBatchBeyondDistance)
{
    StreamPrefetcher pf(config(4, 16));
    observe(pf, lineToAddr(1000));
    const auto out = observe(pf, lineToAddr(1001));
    ASSERT_EQ(out.size(), 4u);
    // First prefetches land just beyond start + distance.
    EXPECT_EQ(out[0], lineToAddr(1000 + 16 + 1));
    EXPECT_EQ(out[3], lineToAddr(1000 + 16 + 4));
}

TEST(StreamTest, DescendingStreamsSupported)
{
    StreamPrefetcher pf(config(4, 16));
    observe(pf, lineToAddr(1000));
    const auto out = observe(pf, lineToAddr(999));
    ASSERT_EQ(out.size(), 4u);
    EXPECT_EQ(out[0], lineToAddr(1000 - 17));
    EXPECT_EQ(out[3], lineToAddr(1000 - 20));
}

TEST(StreamTest, SameLineDoesNotArm)
{
    StreamPrefetcher pf(config());
    observe(pf, lineToAddr(1000));
    EXPECT_TRUE(observe(pf, lineToAddr(1000), /*miss=*/false).empty());
}

TEST(StreamTest, PacingOnePrefetchPerLineConsumed)
{
    // In steady state, N prefetches issue per N lines consumed: the
    // front cannot run away from the access stream.
    StreamPrefetcher pf(config(4, 16));
    observe(pf, lineToAddr(0));
    std::size_t issued = 0;
    for (std::uint64_t line = 1; line <= 200; ++line)
        issued += observe(pf, lineToAddr(line)).size();
    EXPECT_GE(issued, 195u);
    EXPECT_LE(issued, 230u);
}

TEST(StreamTest, PrefetchesAreContiguousAndUnique)
{
    StreamPrefetcher pf(config(4, 16));
    observe(pf, lineToAddr(0));
    std::set<Addr> seen;
    for (std::uint64_t line = 1; line <= 100; ++line) {
        for (Addr a : observe(pf, lineToAddr(line))) {
            EXPECT_TRUE(seen.insert(a).second)
                << "duplicate prefetch " << a;
        }
    }
    // Everything from line 17 up to ~line 117 must be covered gap-free.
    for (std::uint64_t line = 17; line <= 110; ++line)
        EXPECT_TRUE(seen.count(lineToAddr(line))) << "hole at " << line;
}

TEST(StreamTest, TrailingAccessDoesNotTrigger)
{
    StreamPrefetcher pf(config(4, 16));
    observe(pf, lineToAddr(100));
    observe(pf, lineToAddr(101)); // arm + first batch
    observe(pf, lineToAddr(102)); // advances region
    // A late access behind the region start must not shift the front.
    EXPECT_TRUE(observe(pf, lineToAddr(100), false).empty());
}

TEST(StreamTest, ReanchorWhenConsumerOutrunsFront)
{
    StreamPrefetcher pf(config(4, 4, 32));
    observe(pf, lineToAddr(100));
    observe(pf, lineToAddr(101)); // region ~[101,105]
    // Jump just beyond the front but within the slack window.
    const auto out = observe(pf, lineToAddr(110));
    ASSERT_FALSE(out.empty());
    // New prefetches are relative to the re-anchored position.
    EXPECT_EQ(out[0], lineToAddr(110 + 4 + 1));
}

TEST(StreamTest, FarJumpAllocatesNewStream)
{
    StreamPrefetcher pf(config(4, 16));
    observe(pf, lineToAddr(100));
    observe(pf, lineToAddr(101));
    // A miss far away starts a second stream; arming it works.
    observe(pf, lineToAddr(50000));
    const auto out = observe(pf, lineToAddr(50001));
    ASSERT_EQ(out.size(), 4u);
    EXPECT_EQ(out[0], lineToAddr(50000 + 17));
}

TEST(StreamTest, TrainOnlySuppressesAllocationButAllowsTriggers)
{
    StreamPrefetcher pf(config(4, 16));
    // train_only miss: no stream allocated.
    observe(pf, lineToAddr(100), true, /*train_only=*/true);
    EXPECT_TRUE(observe(pf, lineToAddr(101), true, true).empty());
    // Normal allocation, then train_only accesses still trigger.
    observe(pf, lineToAddr(200));
    const auto out = observe(pf, lineToAddr(201), true, true);
    EXPECT_EQ(out.size(), 4u);
}

TEST(StreamTest, LruVictimSelection)
{
    StreamPrefetcher pf(config(4, 16, 2)); // only two entries
    observe(pf, lineToAddr(1000));
    observe(pf, lineToAddr(2000));
    observe(pf, lineToAddr(1001)); // refresh stream A
    observe(pf, lineToAddr(3000)); // must evict stream B (LRU)
    // Stream A is still trained and triggering.
    EXPECT_FALSE(observe(pf, lineToAddr(1005)).empty());
    // Stream B is gone: its next access allocates fresh (no prefetches).
    EXPECT_TRUE(observe(pf, lineToAddr(2100)).empty());
}

TEST(StreamTest, SetAggressivenessChangesDegreeAndDistance)
{
    StreamPrefetcher pf(config(4, 16));
    pf.setAggressiveness(2, 8);
    EXPECT_EQ(pf.currentDegree(), 2u);
    EXPECT_EQ(pf.currentDistance(), 8u);
    observe(pf, lineToAddr(100));
    const auto out = observe(pf, lineToAddr(101));
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0], lineToAddr(100 + 8 + 1)); // start + distance + 1
}

TEST(StreamTest, NeverPrefetchesNegativeLines)
{
    StreamPrefetcher pf(config(4, 16));
    observe(pf, lineToAddr(10));
    const auto out = observe(pf, lineToAddr(9)); // descending near zero
    for (Addr a : out)
        EXPECT_LT(lineIndex(a), 30u); // all small and non-wrapped
}

/**
 * Property: for a sequential run of L lines, the fraction of issued
 * prefetches that fall inside the run approaches (L - D) / L -- the
 * relationship the workload profiles use to dial accuracy.
 */
class StreamAccuracyProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(StreamAccuracyProperty, RunLengthControlsAccuracy)
{
    const std::uint64_t run = GetParam();
    const std::uint32_t distance = 16;
    StreamPrefetcher pf(config(4, distance));
    std::vector<Addr> issued;
    for (std::uint64_t line = 0; line < run; ++line) {
        std::vector<Addr> out;
        pf.observe(lineToAddr(5000 + line), 0x400, true, false, out);
        issued.insert(issued.end(), out.begin(), out.end());
    }
    ASSERT_FALSE(issued.empty());
    const auto inside = static_cast<double>(std::count_if(
        issued.begin(), issued.end(), [&](Addr a) {
            return lineIndex(a) < 5000 + run;
        }));
    const double measured = inside / static_cast<double>(issued.size());
    const double expected =
        static_cast<double>(run - distance) / static_cast<double>(run);
    EXPECT_NEAR(measured, expected, 0.12);
}

INSTANTIATE_TEST_SUITE_P(RunLengths, StreamAccuracyProperty,
                         ::testing::Values(32, 64, 128, 512, 2048));

} // namespace
} // namespace padc::prefetch
