/**
 * @file
 * Unit tests for Feedback Directed Prefetching: the aggressiveness
 * governor and the pollution filter.
 */

#include <gtest/gtest.h>

#include "prefetch/fdp.hh"

namespace padc::prefetch
{
namespace
{

FdpController::IntervalCounts
counts(std::uint64_t sent, std::uint64_t used, std::uint64_t late = 0,
       std::uint64_t pollution = 0, std::uint64_t demand = 10000)
{
    FdpController::IntervalCounts c;
    c.prefetches_sent = sent;
    c.prefetches_used = used;
    c.late_prefetches = late;
    c.pollution_misses = pollution;
    c.demand_accesses = demand;
    return c;
}

TEST(FdpTest, StartsAtConfiguredLevel)
{
    FdpConfig cfg;
    cfg.initial_level = 3;
    FdpController fdp(cfg);
    EXPECT_EQ(fdp.level(), 3u);
    EXPECT_EQ(fdp.degree(), 2u);
    EXPECT_EQ(fdp.distance(), 16u);
}

TEST(FdpTest, LevelClampedToValidRange)
{
    FdpConfig low;
    low.initial_level = 0;
    EXPECT_EQ(FdpController(low).level(), 1u);
    FdpConfig high;
    high.initial_level = 99;
    EXPECT_EQ(FdpController(high).level(), 5u);
}

TEST(FdpTest, LowAccuracyThrottlesDown)
{
    FdpController fdp(FdpConfig{});
    const std::uint32_t start = fdp.level();
    fdp.evaluate(counts(1000, 100)); // 10% accurate
    EXPECT_EQ(fdp.level(), start - 1);
}

TEST(FdpTest, ThrottleSaturatesAtLevelOne)
{
    FdpController fdp(FdpConfig{});
    for (int i = 0; i < 10; ++i)
        fdp.evaluate(counts(1000, 0));
    EXPECT_EQ(fdp.level(), 1u);
    EXPECT_EQ(fdp.degree(), 1u);
    EXPECT_EQ(fdp.distance(), 4u);
}

TEST(FdpTest, AccurateAndLateRampsUp)
{
    FdpController fdp(FdpConfig{});
    const std::uint32_t start = fdp.level();
    fdp.evaluate(counts(1000, 950, /*late=*/100));
    EXPECT_EQ(fdp.level(), start + 1);
}

TEST(FdpTest, RampSaturatesAtLevelFive)
{
    FdpController fdp(FdpConfig{});
    for (int i = 0; i < 10; ++i)
        fdp.evaluate(counts(1000, 990, 200));
    EXPECT_EQ(fdp.level(), 5u);
    EXPECT_EQ(fdp.degree(), 4u);
    EXPECT_EQ(fdp.distance(), 64u);
}

TEST(FdpTest, PollutionThrottlesMiddlingAccuracy)
{
    FdpController fdp(FdpConfig{});
    const std::uint32_t start = fdp.level();
    // 60% accuracy with heavy pollution.
    fdp.evaluate(counts(1000, 600, 0, /*pollution=*/200, 10000));
    EXPECT_EQ(fdp.level(), start - 1);
}

TEST(FdpTest, MiddlingAccuracyNoSignalsHolds)
{
    FdpController fdp(FdpConfig{});
    const std::uint32_t start = fdp.level();
    fdp.evaluate(counts(1000, 600));
    EXPECT_EQ(fdp.level(), start);
}

TEST(FdpTest, NoPrefetchesCountsAsAccurate)
{
    // An idle prefetcher should not be punished.
    FdpController fdp(FdpConfig{});
    const std::uint32_t start = fdp.level();
    fdp.evaluate(counts(0, 0));
    EXPECT_GE(fdp.level(), start);
}

TEST(PollutionFilterTest, InsertCheckClear)
{
    PollutionFilter filter(1024);
    EXPECT_FALSE(filter.checkAndClear(0x1000));
    filter.insert(0x1000);
    EXPECT_TRUE(filter.checkAndClear(0x1000));
    EXPECT_FALSE(filter.checkAndClear(0x1000)); // cleared
}

TEST(PollutionFilterTest, DistinctLinesMostlyIndependent)
{
    PollutionFilter filter(4096);
    filter.insert(0x1000);
    EXPECT_FALSE(filter.checkAndClear(0x2000));
    EXPECT_TRUE(filter.checkAndClear(0x1000));
}

} // namespace
} // namespace padc::prefetch
