/**
 * @file
 * Unit tests for the DDPF prefetch-usefulness filter.
 */

#include <gtest/gtest.h>

#include "prefetch/ddpf.hh"

namespace padc::prefetch
{
namespace
{

TEST(DdpfTest, InitiallyPermissive)
{
    DdpfFilter filter(DdpfConfig{});
    EXPECT_TRUE(filter.allow(0x1000, 0x400));
    EXPECT_TRUE(filter.allow(0xABCDE000, 0x999));
}

TEST(DdpfTest, RepeatedUselessnessFilters)
{
    DdpfFilter filter(DdpfConfig{}); // initial 3, threshold 2
    filter.update(0x1000, 0x400, false); // 3 -> 2 (still allowed)
    EXPECT_TRUE(filter.allow(0x1000, 0x400));
    filter.update(0x1000, 0x400, false); // 2 -> 1
    EXPECT_FALSE(filter.allow(0x1000, 0x400));
}

TEST(DdpfTest, UsefulnessRecovers)
{
    DdpfFilter filter(DdpfConfig{});
    for (int i = 0; i < 4; ++i)
        filter.update(0x1000, 0x400, false); // saturate down to 0
    EXPECT_FALSE(filter.allow(0x1000, 0x400));
    filter.update(0x1000, 0x400, true); // 0 -> 1
    EXPECT_FALSE(filter.allow(0x1000, 0x400));
    filter.update(0x1000, 0x400, true); // 1 -> 2
    EXPECT_TRUE(filter.allow(0x1000, 0x400));
}

TEST(DdpfTest, CountersSaturateBothWays)
{
    DdpfFilter filter(DdpfConfig{});
    for (int i = 0; i < 10; ++i)
        filter.update(0x1000, 0x400, true); // stays at 3
    filter.update(0x1000, 0x400, false);
    filter.update(0x1000, 0x400, false); // 3 -> 1 exactly two steps
    EXPECT_FALSE(filter.allow(0x1000, 0x400));
    for (int i = 0; i < 10; ++i)
        filter.update(0x1000, 0x400, false); // stays at 0, no wrap
    filter.update(0x1000, 0x400, true);
    filter.update(0x1000, 0x400, true);
    EXPECT_TRUE(filter.allow(0x1000, 0x400));
}

TEST(DdpfTest, ContextsMostlyIndependent)
{
    DdpfFilter filter(DdpfConfig{});
    for (int i = 0; i < 4; ++i)
        filter.update(0x1000, 0x400, false);
    // A different (pc, line) context is overwhelmingly likely to map to
    // a different counter in a 4K table.
    EXPECT_TRUE(filter.allow(0x2000, 0x500));
}

TEST(DdpfTest, AliasingIsDeterministic)
{
    // The same context always maps to the same counter: filtering a
    // context is stable across queries.
    DdpfFilter filter(DdpfConfig{});
    for (int i = 0; i < 4; ++i)
        filter.update(0x77777000, 0x1234, false);
    for (int i = 0; i < 10; ++i)
        EXPECT_FALSE(filter.allow(0x77777000, 0x1234));
}

TEST(DdpfTest, FilteredCounter)
{
    DdpfFilter filter(DdpfConfig{});
    EXPECT_EQ(filter.filtered(), 0u);
    filter.noteFiltered();
    filter.noteFiltered();
    EXPECT_EQ(filter.filtered(), 2u);
}

TEST(DdpfTest, CustomThresholdAndInitial)
{
    DdpfConfig cfg;
    cfg.threshold = 3;
    cfg.initial = 2;
    DdpfFilter filter(cfg);
    EXPECT_FALSE(filter.allow(0x40, 0x80)); // starts below threshold
    filter.update(0x40, 0x80, true);
    EXPECT_TRUE(filter.allow(0x40, 0x80));
}

} // namespace
} // namespace padc::prefetch
