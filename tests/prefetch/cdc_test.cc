/**
 * @file
 * Unit tests for the CZone / Delta Correlation (C/DC) prefetcher.
 */

#include <gtest/gtest.h>

#include <vector>

#include "prefetch/cdc_prefetcher.hh"

namespace padc::prefetch
{
namespace
{

PrefetcherConfig
config(std::uint32_t degree = 4)
{
    PrefetcherConfig cfg;
    cfg.kind = PrefetcherKind::Cdc;
    cfg.degree = degree;
    cfg.czone_shift = 16; // 64KB zones
    cfg.czone_entries = 8;
    cfg.delta_history = 16;
    return cfg;
}

std::vector<Addr>
miss(Prefetcher &pf, Addr addr, bool train_only = false)
{
    std::vector<Addr> out;
    pf.observe(addr, 0x400, true, train_only, out);
    return out;
}

TEST(CdcTest, HitsAreIgnored)
{
    CdcPrefetcher pf(config());
    std::vector<Addr> out;
    for (int i = 0; i < 20; ++i)
        pf.observe(lineToAddr(100 + i), 0x400, /*miss=*/false, false, out);
    EXPECT_TRUE(out.empty());
}

TEST(CdcTest, RepeatingDeltaPairPredicted)
{
    CdcPrefetcher pf(config(2));
    // Delta pattern +1, +2 repeating within one zone.
    Addr line = 16; // zone 0
    miss(pf, lineToAddr(line));
    line += 1;
    miss(pf, lineToAddr(line)); // delta 1
    line += 2;
    miss(pf, lineToAddr(line)); // delta 2
    line += 1;
    miss(pf, lineToAddr(line)); // delta 1
    line += 2;
    const auto out = miss(pf, lineToAddr(line)); // delta 2: pair (1,2)
                                                 // seen before
    ASSERT_FALSE(out.empty());
    // After the earlier (1,2) occurrence came deltas 1 then 2.
    EXPECT_EQ(out[0], lineToAddr(line + 1));
    if (out.size() > 1)
        EXPECT_EQ(out[1], lineToAddr(line + 1 + 2));
}

TEST(CdcTest, ConstantStrideIsCorrelated)
{
    CdcPrefetcher pf(config(3));
    std::vector<Addr> out;
    Addr line = 100;
    for (int i = 0; i < 6; ++i) {
        out = miss(pf, lineToAddr(line));
        line += 4;
    }
    ASSERT_EQ(out.size(), 3u);
    // line was advanced after the last miss: last missed line is line-4.
    EXPECT_EQ(out[0], lineToAddr(line - 4 + 4));
    EXPECT_EQ(out[1], lineToAddr(line - 4 + 8));
    EXPECT_EQ(out[2], lineToAddr(line - 4 + 12));
}

TEST(CdcTest, ZonesAreIndependent)
{
    CdcPrefetcher pf(config(2));
    const Addr zone_a = 0;
    const Addr zone_b = 1ULL << 20; // different 64KB zone
    // Interleave: stride 2 in zone A, stride 5 in zone B.
    std::vector<Addr> out_a;
    std::vector<Addr> out_b;
    for (int i = 0; i < 6; ++i) {
        out_a = miss(pf, zone_a + static_cast<Addr>(i) * 2 * kLineBytes);
        out_b = miss(pf, zone_b + static_cast<Addr>(i) * 5 * kLineBytes);
    }
    ASSERT_FALSE(out_a.empty());
    ASSERT_FALSE(out_b.empty());
    EXPECT_EQ(lineIndex(out_a[0]), lineIndex(zone_a) + 6 * 2);
    EXPECT_EQ(out_b[0] - zone_b, static_cast<Addr>(6) * 5 * kLineBytes);
}

TEST(CdcTest, NoPredictionWithoutCorrelation)
{
    CdcPrefetcher pf(config());
    // Strictly novel deltas: 1, 2, 3, 4, ... never repeat a pair.
    Addr line = 0;
    std::vector<Addr> out;
    for (int i = 1; i < 12; ++i) {
        line += static_cast<Addr>(i);
        out = miss(pf, lineToAddr(line));
        EXPECT_TRUE(out.empty()) << "spurious prediction at step " << i;
    }
}

TEST(CdcTest, TrainOnlyDoesNotAllocateZones)
{
    CdcPrefetcher pf(config(2));
    // Zone never seen: train_only misses must not create it.
    std::vector<Addr> out;
    for (int i = 0; i < 6; ++i)
        out = miss(pf, lineToAddr(100 + i * 4), /*train_only=*/true);
    EXPECT_TRUE(out.empty());
    // Normal training afterwards starts from scratch (needs ramp).
    out = miss(pf, lineToAddr(200));
    EXPECT_TRUE(out.empty());
}

TEST(CdcTest, ZoneEvictionByLru)
{
    PrefetcherConfig cfg = config(2);
    cfg.czone_entries = 2;
    CdcPrefetcher pf(cfg);
    // Train zones 0 and 1, then touch zone 2 -> evicts zone 0 (LRU
    // after zone 1 was refreshed). Re-accessing zone 0 must retrain.
    for (int i = 0; i < 6; ++i)
        miss(pf, lineToAddr(i * 2));
    for (int i = 0; i < 6; ++i)
        miss(pf, (1ULL << 20) + lineToAddr(i * 2));
    miss(pf, (1ULL << 21));
    // Zone 0 was evicted: a single new miss predicts nothing.
    const auto out = miss(pf, lineToAddr(100));
    EXPECT_TRUE(out.empty());
}

} // namespace
} // namespace padc::prefetch
