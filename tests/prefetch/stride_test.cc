/**
 * @file
 * Unit tests for the PC-based stride prefetcher.
 */

#include <gtest/gtest.h>

#include <vector>

#include "prefetch/stride_prefetcher.hh"

namespace padc::prefetch
{
namespace
{

PrefetcherConfig
config(std::uint32_t degree = 4)
{
    PrefetcherConfig cfg;
    cfg.kind = PrefetcherKind::Stride;
    cfg.degree = degree;
    cfg.stride_entries = 256;
    return cfg;
}

std::vector<Addr>
observe(Prefetcher &pf, Addr addr, Addr pc, bool train_only = false)
{
    std::vector<Addr> out;
    pf.observe(addr, pc, true, train_only, out);
    return out;
}

TEST(StrideTest, DetectsConstantStrideAfterConfidence)
{
    StridePrefetcher pf(config());
    const Addr pc = 0x400;
    // Accesses with stride 3 lines.
    EXPECT_TRUE(observe(pf, lineToAddr(100), pc).empty()); // allocate
    EXPECT_TRUE(observe(pf, lineToAddr(103), pc).empty()); // learn stride
    EXPECT_TRUE(observe(pf, lineToAddr(106), pc).empty()); // conf 1
    const auto out = observe(pf, lineToAddr(109), pc);     // conf 2 -> go
    ASSERT_EQ(out.size(), 4u);
    EXPECT_EQ(out[0], lineToAddr(112));
    EXPECT_EQ(out[1], lineToAddr(115));
    EXPECT_EQ(out[3], lineToAddr(121));
}

TEST(StrideTest, NegativeStride)
{
    StridePrefetcher pf(config(2));
    const Addr pc = 0x404;
    observe(pf, lineToAddr(1000), pc);
    observe(pf, lineToAddr(995), pc);
    observe(pf, lineToAddr(990), pc);
    const auto out = observe(pf, lineToAddr(985), pc);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0], lineToAddr(980));
    EXPECT_EQ(out[1], lineToAddr(975));
}

TEST(StrideTest, DifferentPcsAreIndependent)
{
    StridePrefetcher pf(config());
    // Interleave two PCs with different strides; both must train.
    for (int i = 0; i < 4; ++i) {
        observe(pf, lineToAddr(100 + i * 2), 0x400);
        observe(pf, lineToAddr(9000 + i * 7), 0x500);
    }
    const auto a = observe(pf, lineToAddr(108), 0x400);
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a[0], lineToAddr(110));
    const auto b = observe(pf, lineToAddr(9028), 0x500);
    ASSERT_FALSE(b.empty());
    EXPECT_EQ(b[0], lineToAddr(9035));
}

TEST(StrideTest, ConfidenceHysteresisOnStrideChange)
{
    StridePrefetcher pf(config());
    const Addr pc = 0x400;
    for (int i = 0; i < 4; ++i)
        observe(pf, lineToAddr(100 + i * 3), pc);
    // Break the pattern: confidence decays, no prefetch.
    EXPECT_TRUE(observe(pf, lineToAddr(500), pc).empty());
    EXPECT_TRUE(observe(pf, lineToAddr(600), pc).empty());
    // Old stride is eventually replaced; retrain with stride 1.
    std::vector<Addr> out;
    for (int i = 0; i < 8; ++i)
        out = observe(pf, lineToAddr(700 + i), pc);
    ASSERT_FALSE(out.empty());
    EXPECT_EQ(out[0], lineToAddr(708));
}

TEST(StrideTest, ZeroDeltaIgnored)
{
    StridePrefetcher pf(config());
    const Addr pc = 0x400;
    for (int i = 0; i < 3; ++i)
        observe(pf, lineToAddr(100 + i * 3), pc);
    // Repeated access to the same line must not disturb training.
    EXPECT_TRUE(observe(pf, lineToAddr(106), pc).empty());
    const auto out = observe(pf, lineToAddr(109), pc);
    EXPECT_FALSE(out.empty());
}

TEST(StrideTest, TrainOnlyDoesNotStealEntries)
{
    StridePrefetcher pf(config());
    const Addr pc_a = 0x400;
    // Train pc_a fully.
    for (int i = 0; i < 4; ++i)
        observe(pf, lineToAddr(100 + i * 3), pc_a);
    // A runahead access from a PC that aliases to a different entry is
    // fine; but even a brand-new PC must not allocate in train_only
    // mode. We can't directly inspect the table, so verify pc_a still
    // predicts afterwards even if the new PC aliases.
    for (Addr pc = 0x1000; pc < 0x1100; pc += 4)
        observe(pf, lineToAddr(50000), pc, /*train_only=*/true);
    const auto out = observe(pf, lineToAddr(112), pc_a);
    EXPECT_FALSE(out.empty());
}

TEST(StrideTest, SetAggressivenessChangesDegree)
{
    StridePrefetcher pf(config(4));
    pf.setAggressiveness(1, 999);
    EXPECT_EQ(pf.currentDegree(), 1u);
    const Addr pc = 0x400;
    for (int i = 0; i < 3; ++i)
        observe(pf, lineToAddr(100 + i * 3), pc);
    const auto out = observe(pf, lineToAddr(109), pc);
    EXPECT_EQ(out.size(), 1u);
}

/** Property: predictions always continue the observed stride exactly. */
class StridePatternProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(StridePatternProperty, PredictionsFollowStride)
{
    const std::int64_t stride = GetParam();
    StridePrefetcher pf(config(3));
    const Addr pc = 0x440;
    std::int64_t line = 100000;
    std::vector<Addr> out;
    for (int i = 0; i < 10; ++i) {
        out = observe(pf, lineToAddr(static_cast<Addr>(line)), pc);
        line += stride;
    }
    ASSERT_EQ(out.size(), 3u);
    // The last observation was at (line - stride).
    for (int k = 0; k < 3; ++k) {
        EXPECT_EQ(out[k], lineToAddr(static_cast<Addr>(
                              line - stride + (k + 1) * stride)));
    }
}

INSTANTIATE_TEST_SUITE_P(Strides, StridePatternProperty,
                         ::testing::Values(1, 2, 5, 16, -1, -4));

} // namespace
} // namespace padc::prefetch
