/**
 * @file
 * Unit tests for the Markov (miss-correlation) prefetcher.
 */

#include <gtest/gtest.h>

#include <vector>

#include "prefetch/markov_prefetcher.hh"

namespace padc::prefetch
{
namespace
{

PrefetcherConfig
config(std::uint32_t successors = 2)
{
    PrefetcherConfig cfg;
    cfg.kind = PrefetcherKind::Markov;
    cfg.markov_entries = 1024;
    cfg.markov_successors = successors;
    return cfg;
}

std::vector<Addr>
miss(Prefetcher &pf, Addr addr, bool train_only = false)
{
    std::vector<Addr> out;
    pf.observe(addr, 0x400, true, train_only, out);
    return out;
}

TEST(MarkovTest, FirstPassPredictsNothing)
{
    MarkovPrefetcher pf(config());
    EXPECT_TRUE(miss(pf, 0x1000).empty());
    EXPECT_TRUE(miss(pf, 0x2000).empty());
    EXPECT_TRUE(miss(pf, 0x3000).empty());
}

TEST(MarkovTest, RepeatedSequencePredictsSuccessor)
{
    MarkovPrefetcher pf(config());
    miss(pf, 0x1000);
    miss(pf, 0x2000);
    miss(pf, 0x3000);
    // Revisit the chain head: successor 0x2000 must be predicted.
    const auto out = miss(pf, 0x1000);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 0x2000u);
    // And continuing: 0x2000's recorded successor is 0x3000. (0x1000
    // is also now a successor of 0x3000 from the revisit.)
    const auto out2 = miss(pf, 0x2000);
    ASSERT_FALSE(out2.empty());
    EXPECT_EQ(out2[0], 0x3000u);
}

TEST(MarkovTest, HitsNeitherTrainNorTrigger)
{
    MarkovPrefetcher pf(config());
    miss(pf, 0x1000);
    std::vector<Addr> out;
    pf.observe(0x2000, 0x400, /*miss=*/false, false, out);
    EXPECT_TRUE(out.empty());
    // The hit did not interpose in the miss stream: the next miss is
    // recorded as 0x1000's successor, and 0x2000 never is.
    miss(pf, 0x9000);
    const auto pred = miss(pf, 0x1000);
    ASSERT_EQ(pred.size(), 1u);
    EXPECT_EQ(pred[0], 0x9000u);
}

TEST(MarkovTest, MultipleSuccessorsMruFirst)
{
    MarkovPrefetcher pf(config(2));
    // 0x1000 followed by 0x2000 then later by 0x3000.
    miss(pf, 0x1000);
    miss(pf, 0x2000);
    miss(pf, 0x1000);
    miss(pf, 0x3000);
    miss(pf, 0x7000); // break the chain
    const auto out = miss(pf, 0x1000);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0], 0x3000u); // most recent first
    EXPECT_EQ(out[1], 0x2000u);
}

TEST(MarkovTest, SuccessorListCapped)
{
    MarkovPrefetcher pf(config(2));
    for (Addr next = 0x2000; next <= 0x5000; next += 0x1000) {
        miss(pf, 0x1000);
        miss(pf, next);
    }
    miss(pf, 0x9000);
    const auto out = miss(pf, 0x1000);
    EXPECT_EQ(out.size(), 2u); // capped at markov_successors
    EXPECT_EQ(out[0], 0x5000u);
    EXPECT_EQ(out[1], 0x4000u);
}

TEST(MarkovTest, RepeatedPairMovesToMruWithoutDuplication)
{
    MarkovPrefetcher pf(config(2));
    miss(pf, 0x1000);
    miss(pf, 0x2000);
    miss(pf, 0x1000);
    miss(pf, 0x2000);
    miss(pf, 0x9000);
    const auto out = miss(pf, 0x1000);
    // 0x2000 recorded once (deduplicated).
    ASSERT_GE(out.size(), 1u);
    EXPECT_EQ(out[0], 0x2000u);
    int count = 0;
    for (Addr a : out)
        count += a == 0x2000u ? 1 : 0;
    EXPECT_EQ(count, 1);
}

TEST(MarkovTest, TrainOnlySuppressesLearning)
{
    MarkovPrefetcher pf(config());
    miss(pf, 0x1000);
    miss(pf, 0x2000, /*train_only=*/true); // transition not recorded
    miss(pf, 0x9000);
    EXPECT_TRUE(miss(pf, 0x1000).empty());
}

TEST(MarkovTest, AddressesAreLineAligned)
{
    MarkovPrefetcher pf(config());
    miss(pf, 0x1008); // unaligned byte address
    miss(pf, 0x2010);
    miss(pf, 0x9000);
    const auto out = miss(pf, 0x1004); // same line as 0x1008
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], lineAlign(0x2010));
}

} // namespace
} // namespace padc::prefetch
