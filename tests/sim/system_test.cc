/**
 * @file
 * End-to-end integration and invariant tests for the assembled system:
 * traffic conservation, P-bit accounting, promotion, policy behaviour,
 * shared-L2 and dual-controller configurations, closed-row operation,
 * refresh, and warm-up windows.
 */

#include <gtest/gtest.h>

#include <memory>

#include "sim/metrics.hh"
#include "sim/system.hh"
#include "workload/generator.hh"
#include "workload/mixes.hh"

namespace padc::sim
{
namespace
{

/** Build traces for a mix and run a system; returns it for inspection. */
struct Harness
{
    Harness(SystemConfig config, const workload::Mix &mix,
            std::uint64_t instructions = 20000,
            std::uint64_t warmup = 0)
    {
        for (std::uint32_t c = 0; c < config.num_cores; ++c) {
            traces.push_back(std::make_unique<workload::SyntheticTrace>(
                workload::traceParamsFor(mix, c, 0)));
        }
        std::vector<core::TraceSource *> sources;
        for (auto &t : traces)
            sources.push_back(t.get());
        system = std::make_unique<System>(config, std::move(sources));
        system->run(instructions, 30000000, warmup);
    }

    std::vector<std::unique_ptr<workload::SyntheticTrace>> traces;
    std::unique_ptr<System> system;
};

SystemConfig
padcConfig(std::uint32_t cores)
{
    SystemConfig cfg = SystemConfig::baseline(cores);
    cfg.sched.kind = SchedPolicyKind::Aps;
    cfg.sched.apd_enabled = true;
    return cfg;
}

TEST(SystemTest, CompletesInstructionTarget)
{
    Harness h(padcConfig(1), {"libquantum_06"});
    EXPECT_TRUE(h.system->result(0).done);
    EXPECT_GE(h.system->result(0).core_stats.instructions, 20000u);
    EXPECT_GT(h.system->cycles(), 0u);
}

TEST(SystemTest, TrafficConservation)
{
    // Fills reported to the system must equal reads serviced by the
    // controllers (including forwarded reads, minus nothing else).
    Harness h(padcConfig(1), {"milc_06"}, 40000);
    const auto &ms = h.system->memStats(0);
    const auto &cs = h.system->controller(0).stats();
    EXPECT_EQ(ms.demand_fills + ms.prefetch_fills,
              cs.demand_reads + cs.prefetch_reads + cs.forwarded_reads);
    // Useful prefetches cannot exceed prefetch fills.
    EXPECT_LE(ms.useful_prefetch_fills,
              ms.prefetch_fills + ms.promotions);
}

TEST(SystemTest, AccuracyWithinBounds)
{
    Harness h(padcConfig(1), {"milc_06"}, 40000);
    const auto &res = h.system->result(0);
    EXPECT_LE(res.pref_used, res.pref_sent + 1);
    const double acc = h.system->tracker().accuracy(0);
    EXPECT_GE(acc, 0.0);
    EXPECT_LE(acc, 1.0);
}

TEST(SystemTest, PrefetcherGeneratesAndResolvesPrefetches)
{
    Harness h(padcConfig(1), {"libquantum_06"}, 40000);
    const auto &ms = h.system->memStats(0);
    EXPECT_GT(ms.prefetches_issued, 100u);
    EXPECT_GT(ms.useful_prefetch_fills, 100u);
    // libquantum is nearly perfectly prefetchable.
    EXPECT_GT(static_cast<double>(h.system->result(0).pref_used) /
                  static_cast<double>(h.system->result(0).pref_sent),
              0.8);
}

TEST(SystemTest, UnfriendlyWorkloadDropsPrefetches)
{
    SystemConfig cfg = padcConfig(1);
    Harness h(cfg, {"omnetpp_06"}, 60000);
    EXPECT_GT(h.system->controller(0).stats().prefetches_dropped, 0u);
}

TEST(SystemTest, NoPrefetchConfigIssuesNone)
{
    SystemConfig cfg = padcConfig(1);
    cfg.prefetch_enabled = false;
    Harness h(cfg, {"libquantum_06"});
    EXPECT_EQ(h.system->memStats(0).prefetches_issued, 0u);
    EXPECT_EQ(h.system->memStats(0).prefetch_fills, 0u);
}

TEST(SystemTest, PromotionsHappenOnLatePrefetches)
{
    // Intense streaming makes some prefetches late -> demand matches.
    SystemConfig cfg = padcConfig(1);
    Harness h(cfg, {"swim_00"}, 80000);
    EXPECT_GT(h.system->memStats(0).promotions, 0u);
}

TEST(SystemTest, HistogramsAccumulate)
{
    // Small L2 so unused prefetched lines actually get evicted (the
    // useless histogram samples at eviction time); demand-first so APD
    // does not drop them first.
    SystemConfig cfg = padcConfig(1);
    cfg.sched.kind = SchedPolicyKind::DemandFirst;
    cfg.sched.apd_enabled = false;
    cfg.l2.size_bytes = 64 * 1024;
    Harness h(cfg, {"art_00"}, 60000);
    EXPECT_GT(h.system->usefulServiceHist().total(), 0u);
    EXPECT_GT(h.system->uselessServiceHist().total(), 0u);
}

TEST(SystemTest, AccuracyTimelineRecorded)
{
    Harness h(padcConfig(1), {"milc_06"}, 60000);
    const auto &timeline = h.system->accuracyTimeline();
    ASSERT_GT(timeline.size(), 2u);
    for (const auto &[cycle, acc] : timeline) {
        EXPECT_GE(acc, 0.0);
        EXPECT_LE(acc, 1.0);
    }
    EXPECT_LT(timeline.front().first, timeline.back().first);
}

TEST(SystemTest, MultiCoreAllComplete)
{
    Harness h(padcConfig(4), workload::caseStudyMixed(), 15000);
    for (CoreId i = 0; i < 4; ++i)
        EXPECT_TRUE(h.system->result(i).done) << "core " << i;
}

TEST(SystemTest, SharedL2Works)
{
    SystemConfig cfg = padcConfig(4);
    cfg.shared_l2 = true;
    cfg.l2.size_bytes = 2 * 1024 * 1024;
    cfg.l2.ways = 16;
    cfg.mshr_per_l2 = 128;
    Harness h(cfg, workload::caseStudyMixed(), 15000);
    for (CoreId i = 0; i < 4; ++i)
        EXPECT_TRUE(h.system->result(i).done);
    // Exactly one L2 exists and absorbed all cores' traffic.
    EXPECT_GT(h.system->l2(0).stats().fills, 0u);
}

TEST(SystemTest, DualControllersShareTraffic)
{
    SystemConfig cfg = padcConfig(4);
    cfg.dram.geometry.channels = 2;
    Harness h(cfg, workload::caseStudyFriendly(), 15000);
    ASSERT_EQ(h.system->numControllers(), 2u);
    const auto &s0 = h.system->controller(0).stats();
    const auto &s1 = h.system->controller(1).stats();
    EXPECT_GT(s0.demand_reads + s0.prefetch_reads, 100u);
    EXPECT_GT(s1.demand_reads + s1.prefetch_reads, 100u);
}

TEST(SystemTest, ClosedRowPolicyRuns)
{
    SystemConfig cfg = padcConfig(1);
    cfg.sched.row_policy = RowPolicy::Closed;
    Harness h(cfg, {"libquantum_06"});
    EXPECT_TRUE(h.system->result(0).done);
    const auto m = collectMetrics(*h.system);
    EXPECT_GT(m.cores[0].ipc, 0.0);
}

TEST(SystemTest, RefreshEnabledRuns)
{
    SystemConfig cfg = padcConfig(1);
    cfg.dram.timing.refresh_enabled = true;
    cfg.dram.timing.tREFI = 520; // shortened so short runs see refreshes
    Harness h(cfg, {"libquantum_06"}, 30000);
    EXPECT_TRUE(h.system->result(0).done);
    EXPECT_GT(h.system->dramSystem().totalStats().refreshes, 0u);
}

TEST(SystemTest, WarmupWindowNarrowsMetrics)
{
    SystemConfig cfg = padcConfig(1);
    Harness cold(cfg, {"eon_00"}, 60000, 0);
    Harness warm(cfg, {"eon_00"}, 60000, 30000);
    const auto m_cold = collectMetrics(*cold.system);
    const auto m_warm = collectMetrics(*warm.system);
    // eon's working set fits the L2: after warm-up, misses nearly stop.
    EXPECT_LT(m_warm.cores[0].mpki, m_cold.cores[0].mpki);
    // Retirement is up to 4-wide, so boundaries land within a bundle.
    EXPECT_NEAR(static_cast<double>(m_warm.cores[0].instructions),
                30000.0, 8.0);
}

TEST(SystemTest, RunaheadIssuesRunaheadWork)
{
    SystemConfig cfg = padcConfig(1);
    cfg.core.runahead = true;
    Harness h(cfg, {"omnetpp_06"}, 40000);
    EXPECT_GT(h.system->coreModel(0).stats().runahead_episodes, 0u);
    EXPECT_GT(h.system->coreModel(0).stats().runahead_ops_issued, 0u);
}

TEST(SystemTest, ApsOnlyVersusPadcDropDifference)
{
    SystemConfig aps = padcConfig(1);
    aps.sched.apd_enabled = false;
    Harness a(aps, {"omnetpp_06"}, 40000);
    EXPECT_EQ(a.system->controller(0).stats().prefetches_dropped, 0u);

    Harness b(padcConfig(1), {"omnetpp_06"}, 40000);
    EXPECT_GT(b.system->controller(0).stats().prefetches_dropped, 0u);
}

TEST(SystemTest, DdpfFiltersPrefetches)
{
    // DDPF learns uselessness from unused-prefetch evictions: shrink
    // the L2 so evictions happen within a short run.
    SystemConfig cfg = padcConfig(1);
    cfg.ddpf_enabled = true;
    cfg.sched.apd_enabled = false;
    cfg.l2.size_bytes = 64 * 1024;
    Harness h(cfg, {"art_00"}, 60000);
    EXPECT_GT(h.system->memStats(0).prefetches_filtered, 0u);
}

TEST(SystemTest, FdpThrottlesUnfriendlyWorkloads)
{
    SystemConfig cfg = padcConfig(1);
    cfg.fdp_enabled = true;
    Harness with(cfg, {"omnetpp_06"}, 60000);
    cfg.fdp_enabled = false;
    Harness without(cfg, {"omnetpp_06"}, 60000);
    // FDP must reduce the number of prefetches entering the system for
    // a uselessly-prefetching workload.
    EXPECT_LT(with.system->memStats(0).prefetches_issued,
              without.system->memStats(0).prefetches_issued);
}

TEST(SystemTest, PermutationInterleavingRuns)
{
    SystemConfig cfg = padcConfig(2);
    cfg.dram.geometry.permutation_interleaving = true;
    Harness h(cfg, {"swim_00", "milc_06"}, 15000);
    EXPECT_TRUE(h.system->result(0).done);
    EXPECT_TRUE(h.system->result(1).done);
}

TEST(SystemTest, EightCoreBaselineRuns)
{
    const auto mixes = workload::randomMixes(1, 8, 3);
    Harness h(padcConfig(8), mixes[0], 6000);
    for (CoreId i = 0; i < 8; ++i)
        EXPECT_TRUE(h.system->result(i).done);
}

TEST(SystemTest, CycleCapStopsRun)
{
    SystemConfig cfg = padcConfig(1);
    for (std::uint32_t c = 0; c < 1; ++c) {
        workload::Mix mix = {"mcf_06"};
        std::vector<std::unique_ptr<workload::SyntheticTrace>> traces;
        traces.push_back(std::make_unique<workload::SyntheticTrace>(
            workload::traceParamsFor(mix, 0, 0)));
        System system(cfg, {traces[0].get()});
        system.run(100000000, /*max_cycles=*/5000);
        EXPECT_FALSE(system.result(0).done);
        EXPECT_LE(system.cycles(), 5001u);
        // Metrics remain computable.
        const auto m = collectMetrics(system);
        EXPECT_GE(m.cores[0].ipc, 0.0);
    }
}

} // namespace
} // namespace padc::sim
