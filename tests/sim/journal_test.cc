/**
 * @file
 * Tests for the sweep checkpoint/resume journal: key coverage,
 * bit-identical replay, kill-safety (partial trailing lines, corrupt
 * lines), and the killed-then-resumed sweep acceptance criterion.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "sim/experiment.hh"
#include "sim/journal.hh"
#include "sim/parallel.hh"

namespace padc::sim
{
namespace
{

class JournalTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path_ = ::testing::TempDir() + "padc_journal_test." +
                std::to_string(::getpid()) + ".padcjournal";
        std::remove(path_.c_str());
    }

    void
    TearDown() override
    {
        std::remove(path_.c_str());
    }

    std::string path_;
};

SystemConfig
base2()
{
    return SystemConfig::baseline(2);
}

RunOptions
quickOptions()
{
    RunOptions options;
    options.instructions = 2000;
    options.warmup = 0;
    return options;
}

std::vector<SweepPoint>
twoPolicyPoints()
{
    const workload::Mix mix = {"libquantum_06", "milc_06"};
    std::vector<SweepPoint> points;
    for (const auto setup :
         {PolicySetup::DemandFirst, PolicySetup::Padc}) {
        points.push_back(
            {applyPolicy(base2(), setup), mix, quickOptions()});
    }
    return points;
}

void
expectBitIdentical(const Result<MixEvaluation> &a,
                   const Result<MixEvaluation> &b)
{
    EXPECT_EQ(a.outcome.status, b.outcome.status);
    EXPECT_EQ(a.outcome.detail, b.outcome.detail);
    EXPECT_EQ(a.value.summary.ws, b.value.summary.ws);
    EXPECT_EQ(a.value.summary.hs, b.value.summary.hs);
    EXPECT_EQ(a.value.summary.uf, b.value.summary.uf);
    EXPECT_EQ(a.value.summary.speedups, b.value.summary.speedups);
    ASSERT_EQ(a.value.metrics.cores.size(), b.value.metrics.cores.size());
    for (std::size_t c = 0; c < a.value.metrics.cores.size(); ++c) {
        const CoreMetrics &x = a.value.metrics.cores[c];
        const CoreMetrics &y = b.value.metrics.cores[c];
        EXPECT_EQ(x.ipc, y.ipc);
        EXPECT_EQ(x.mpki, y.mpki);
        EXPECT_EQ(x.spl, y.spl);
        EXPECT_EQ(x.acc, y.acc);
        EXPECT_EQ(x.cov, y.cov);
        EXPECT_EQ(x.rbh, y.rbh);
        EXPECT_EQ(x.rbhu, y.rbhu);
        EXPECT_EQ(x.traffic_demand, y.traffic_demand);
        EXPECT_EQ(x.traffic_pref_useful, y.traffic_pref_useful);
        EXPECT_EQ(x.traffic_pref_useless, y.traffic_pref_useless);
        EXPECT_EQ(x.traffic_writeback, y.traffic_writeback);
        EXPECT_EQ(x.instructions, y.instructions);
        EXPECT_EQ(x.cycles, y.cycles);
    }
}

TEST(SweepPointKey, DistinguishesConfigMixSeedAndOptions)
{
    const workload::Mix mix = {"libquantum_06", "milc_06"};
    const SweepPoint point{applyPolicy(base2(), PolicySetup::DemandFirst),
                           mix, quickOptions()};
    const std::uint64_t key = sweepPointKey(point);

    SweepPoint other = point;
    other.config = applyPolicy(base2(), PolicySetup::Padc);
    EXPECT_NE(sweepPointKey(other), key) << "policy not keyed";

    other = point;
    other.mix = {"milc_06", "libquantum_06"};
    EXPECT_NE(sweepPointKey(other), key) << "mix order not keyed";

    other = point;
    other.options.mix_seed = 1;
    EXPECT_NE(sweepPointKey(other), key) << "seed not keyed";

    other = point;
    other.options.instructions += 1;
    EXPECT_NE(sweepPointKey(other), key) << "instructions not keyed";

    other = point;
    other.config.dram.timing.tRCD += 1;
    EXPECT_NE(sweepPointKey(other), key) << "DRAM timing not keyed";

    // Identical points key identically (stability across calls).
    EXPECT_EQ(sweepPointKey(point), key);
}

TEST_F(JournalTest, RecordedEvalPointsReplayBitIdentical)
{
    const auto points = twoPolicyPoints();
    ParallelExperimentRunner runner(4);

    std::vector<Result<MixEvaluation>> first;
    {
        SweepJournal journal(path_);
        EXPECT_EQ(journal.loadedEntries(), 0u);
        AloneIpcCache alone(base2(), quickOptions());
        first = evaluateSweep(points, alone, runner, &journal);
        EXPECT_EQ(journal.hits(), 0u);
    }

    // A fresh process over the same journal replays without recomputing:
    // the alone cache is never consulted, yet results are bit-identical.
    SweepJournal reopened(path_);
    EXPECT_EQ(reopened.loadedEntries(), points.size());
    AloneIpcCache cold_alone(base2(), quickOptions());
    const auto replayed =
        evaluateSweep(points, cold_alone, runner, &reopened);
    EXPECT_EQ(reopened.hits(), points.size());

    ASSERT_EQ(replayed.size(), first.size());
    for (std::size_t i = 0; i < first.size(); ++i)
        expectBitIdentical(first[i], replayed[i]);
}

TEST_F(JournalTest, RunSweepEntriesRoundTrip)
{
    const workload::Mix mix = {"libquantum_06", "milc_06"};
    const std::vector<SweepPoint> points = {
        {applyPolicy(base2(), PolicySetup::DemandFirst), mix,
         quickOptions()}};
    ParallelExperimentRunner runner(2);

    std::vector<Result<RunMetrics>> first;
    {
        SweepJournal journal(path_);
        first = runSweep(points, runner, &journal);
    }
    SweepJournal reopened(path_);
    EXPECT_EQ(reopened.loadedEntries(), 1u);
    const auto replayed = runSweep(points, runner, &reopened);
    EXPECT_EQ(reopened.hits(), 1u);

    ASSERT_EQ(replayed.size(), 1u);
    EXPECT_EQ(replayed[0].outcome.status, first[0].outcome.status);
    ASSERT_EQ(replayed[0].value.cores.size(), first[0].value.cores.size());
    for (std::size_t c = 0; c < first[0].value.cores.size(); ++c) {
        EXPECT_EQ(replayed[0].value.cores[c].ipc,
                  first[0].value.cores[c].ipc);
        EXPECT_EQ(replayed[0].value.cores[c].cycles,
                  first[0].value.cores[c].cycles);
    }
}

TEST_F(JournalTest, EvalAndRunEntriesDoNotCollide)
{
    // The same key recorded under both kinds must stay two entries.
    Result<RunMetrics> run_result;
    run_result.value.cores.resize(1);
    run_result.value.cores[0].ipc = 1.5;
    Result<MixEvaluation> eval_result;
    eval_result.value.summary.ws = 2.5;

    {
        SweepJournal journal(path_);
        journal.record(42, run_result);
        journal.record(42, eval_result);
    }
    SweepJournal reopened(path_);
    EXPECT_EQ(reopened.loadedEntries(), 2u);
    Result<RunMetrics> r;
    Result<MixEvaluation> e;
    EXPECT_TRUE(reopened.lookup(42, &r));
    EXPECT_TRUE(reopened.lookup(42, &e));
    EXPECT_EQ(r.value.cores.at(0).ipc, 1.5);
    EXPECT_EQ(e.value.summary.ws, 2.5);
    EXPECT_TRUE(reopened.containsEval(42));
    EXPECT_FALSE(reopened.containsEval(43));
}

TEST_F(JournalTest, FailedOutcomeRoundTripsWithDetail)
{
    Result<MixEvaluation> failed;
    failed.outcome.status = PointStatus::Failed;
    failed.outcome.detail = "invalid SystemConfig: mshr_per_l2: ...";
    {
        SweepJournal journal(path_);
        journal.record(7, failed);
    }
    SweepJournal reopened(path_);
    Result<MixEvaluation> loaded;
    ASSERT_TRUE(reopened.lookup(7, &loaded));
    EXPECT_EQ(loaded.outcome.status, PointStatus::Failed);
    EXPECT_EQ(loaded.outcome.detail, failed.outcome.detail);
}

TEST_F(JournalTest, PartialTrailingLineIsDropped)
{
    Result<MixEvaluation> result;
    result.value.summary.ws = 1.25;
    {
        SweepJournal journal(path_);
        journal.record(1, result);
    }
    // Simulate a process killed mid-append: a final line with no '\n'.
    {
        std::ofstream out(path_, std::ios::binary | std::ios::app);
        out << "padcj1 e deadbeef 0 - 1 3ff4";
    }
    SweepJournal reopened(path_);
    EXPECT_EQ(reopened.loadedEntries(), 1u);
    Result<MixEvaluation> loaded;
    EXPECT_TRUE(reopened.lookup(1, &loaded));
    EXPECT_EQ(loaded.value.summary.ws, 1.25);
    Result<MixEvaluation> missing;
    EXPECT_FALSE(reopened.lookup(0xdeadbeef, &missing));
}

TEST_F(JournalTest, AppendAfterTornTailDoesNotMergeLines)
{
    Result<MixEvaluation> first;
    first.value.summary.ws = 1.25;
    {
        SweepJournal journal(path_);
        journal.record(1, first);
    }
    // A supervisor killed mid-append leaves a torn final line. A later
    // resume must not glue its first fresh record onto that tail: the
    // journal terminates the tail at open so both stay separate lines.
    {
        std::ofstream out(path_, std::ios::binary | std::ios::app);
        out << "padcj1 e deadbeef 0 - 1 3ff4";
    }
    Result<MixEvaluation> second;
    second.value.summary.hs = 0.75;
    {
        SweepJournal resumed(path_);
        EXPECT_EQ(resumed.loadedEntries(), 1u);
        resumed.record(2, second);
    }
    SweepJournal reopened(path_);
    EXPECT_EQ(reopened.loadedEntries(), 2u);
    Result<MixEvaluation> loaded;
    ASSERT_TRUE(reopened.lookup(1, &loaded));
    EXPECT_EQ(loaded.value.summary.ws, 1.25);
    ASSERT_TRUE(reopened.lookup(2, &loaded));
    EXPECT_EQ(loaded.value.summary.hs, 0.75);
    EXPECT_FALSE(reopened.lookup(0xdeadbeef, &loaded));
}

TEST_F(JournalTest, CorruptCompleteLinesAreSkippedNotFatal)
{
    {
        std::ofstream out(path_, std::ios::binary);
        out << "padcj1 e 10 0 - 1 zz zz\n"; // bad payload tokens
        out << "garbage line entirely\n";
        out << "padcj1 q 11 0 -\n"; // unknown kind
    }
    SweepJournal journal(path_);
    EXPECT_EQ(journal.loadedEntries(), 0u);
    Result<MixEvaluation> out;
    EXPECT_FALSE(journal.lookup(0x10, &out));
    // The journal is still usable for appends after skipping junk.
    Result<MixEvaluation> fresh;
    fresh.value.summary.hs = 0.5;
    journal.record(0x20, fresh);
    EXPECT_TRUE(journal.lookup(0x20, &fresh));
}

TEST_F(JournalTest, KilledThenResumedSweepIsBitIdenticalToStraightRun)
{
    // Four points: two policies x two seeds.
    const workload::Mix mix = {"libquantum_06", "milc_06"};
    std::vector<SweepPoint> points;
    for (const auto setup :
         {PolicySetup::DemandFirst, PolicySetup::Padc}) {
        for (std::uint64_t seed : {0u, 1u}) {
            RunOptions options = quickOptions();
            options.mix_seed = seed;
            points.push_back({applyPolicy(base2(), setup), mix, options});
        }
    }
    ParallelExperimentRunner runner(4);

    // Reference: one uninterrupted, journal-free run.
    AloneIpcCache ref_alone(base2(), quickOptions());
    const auto reference = evaluateSweep(points, ref_alone, runner);

    // "First process": completes only the first half, then dies (the
    // journal object goes away; the file stays).
    {
        SweepJournal journal(path_);
        AloneIpcCache alone(base2(), quickOptions());
        const std::vector<SweepPoint> half(points.begin(),
                                           points.begin() + 2);
        evaluateSweep(half, alone, runner, &journal);
    }

    // "Second process": resumes the full sweep from the journal.
    SweepJournal resumed(path_);
    EXPECT_EQ(resumed.loadedEntries(), 2u);
    AloneIpcCache alone(base2(), quickOptions());
    const auto results = evaluateSweep(points, alone, runner, &resumed);
    EXPECT_EQ(resumed.hits(), 2u); // first half replayed, not rerun

    ASSERT_EQ(results.size(), reference.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
        SCOPED_TRACE("point " + std::to_string(i));
        expectBitIdentical(reference[i], results[i]);
    }
}

TEST(JournalErrors, UnopenablePathThrows)
{
    EXPECT_THROW(SweepJournal("/nonexistent-dir/padc.journal"),
                 std::runtime_error);
}

} // namespace
} // namespace padc::sim
