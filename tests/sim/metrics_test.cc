/**
 * @file
 * Unit tests for metric computation: WS/HS/UF math and traffic totals.
 */

#include <gtest/gtest.h>

#include "sim/metrics.hh"

namespace padc::sim
{
namespace
{

RunMetrics
makeRun(const std::vector<double> &ipcs)
{
    RunMetrics run;
    for (double ipc : ipcs) {
        CoreMetrics m;
        m.ipc = ipc;
        run.cores.push_back(m);
    }
    return run;
}

TEST(MultiCoreMetricsTest, WeightedSpeedupIsSumOfSpeedups)
{
    const RunMetrics run = makeRun({0.5, 1.0});
    const MultiCoreMetrics m = multiCoreMetrics(run, {1.0, 2.0});
    ASSERT_EQ(m.speedups.size(), 2u);
    EXPECT_DOUBLE_EQ(m.speedups[0], 0.5);
    EXPECT_DOUBLE_EQ(m.speedups[1], 0.5);
    EXPECT_DOUBLE_EQ(m.ws, 1.0);
}

TEST(MultiCoreMetricsTest, HarmonicMeanOfSpeedups)
{
    const RunMetrics run = makeRun({0.25, 1.0});
    // IS = {0.25, 0.5}; HS = 2 / (4 + 2) = 1/3.
    const MultiCoreMetrics m = multiCoreMetrics(run, {1.0, 2.0});
    EXPECT_NEAR(m.hs, 1.0 / 3.0, 1e-12);
}

TEST(MultiCoreMetricsTest, UnfairnessIsMaxOverMin)
{
    const RunMetrics run = makeRun({0.9, 0.3, 0.6});
    const MultiCoreMetrics m = multiCoreMetrics(run, {1.0, 1.0, 1.0});
    EXPECT_NEAR(m.uf, 3.0, 1e-12);
}

TEST(MultiCoreMetricsTest, EqualSpeedupsGiveUnitUnfairness)
{
    const RunMetrics run = makeRun({0.7, 0.7, 0.7, 0.7});
    const MultiCoreMetrics m = multiCoreMetrics(run, {1.0, 1.0, 1.0, 1.0});
    EXPECT_NEAR(m.uf, 1.0, 1e-12);
    EXPECT_NEAR(m.ws, 2.8, 1e-12);
    EXPECT_NEAR(m.hs, 0.7, 1e-12);
}

TEST(MultiCoreMetricsTest, SingleCoreDegenerate)
{
    const RunMetrics run = makeRun({1.5});
    const MultiCoreMetrics m = multiCoreMetrics(run, {1.0});
    EXPECT_DOUBLE_EQ(m.ws, 1.5);
    EXPECT_DOUBLE_EQ(m.hs, 1.5);
    EXPECT_DOUBLE_EQ(m.uf, 1.0);
}

TEST(MultiCoreMetricsTest, ZeroAloneIpcHandled)
{
    const RunMetrics run = makeRun({1.0});
    const MultiCoreMetrics m = multiCoreMetrics(run, {0.0});
    EXPECT_DOUBLE_EQ(m.speedups[0], 0.0);
    EXPECT_DOUBLE_EQ(m.ws, 0.0);
}

TEST(RunMetricsTest, TrafficTotals)
{
    RunMetrics run;
    CoreMetrics a;
    a.traffic_demand = 10;
    a.traffic_pref_useful = 5;
    a.traffic_pref_useless = 3;
    a.traffic_writeback = 2;
    CoreMetrics b;
    b.traffic_demand = 1;
    b.traffic_pref_useful = 1;
    b.traffic_pref_useless = 1;
    b.traffic_writeback = 1;
    run.cores = {a, b};
    EXPECT_EQ(run.trafficDemand(), 11u);
    EXPECT_EQ(run.trafficPrefUseful(), 6u);
    EXPECT_EQ(run.trafficPrefUseless(), 4u);
    EXPECT_EQ(run.trafficWriteback(), 3u);
    EXPECT_EQ(run.totalTraffic(), 24u);
}

} // namespace
} // namespace padc::sim
