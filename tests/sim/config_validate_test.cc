/**
 * @file
 * Tests for structured configuration validation: every baseline and
 * policy setup passes, violations are reported with dotted field paths
 * and accumulate (not fail-fast), and System construction surfaces them
 * as one readable std::invalid_argument instead of an assert.
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "sim/experiment.hh"
#include "sim/system.hh"

namespace padc::sim
{
namespace
{

bool
mentions(const ConfigErrors &errors, const std::string &field)
{
    for (const ConfigError &error : errors.errors()) {
        if (error.field == field)
            return true;
    }
    return false;
}

TEST(ConfigValidate, BaselinesAreValid)
{
    for (std::uint32_t cores : {1u, 2u, 4u, 8u}) {
        const ConfigErrors errors =
            SystemConfig::baseline(cores).validate();
        EXPECT_TRUE(errors.ok())
            << cores << "-core baseline: " << errors.str();
    }
}

TEST(ConfigValidate, EveryPolicySetupIsValid)
{
    const SystemConfig base = SystemConfig::baseline(4);
    for (const auto setup :
         {PolicySetup::NoPref, PolicySetup::DemandFirst,
          PolicySetup::DemandPrefEqual, PolicySetup::PrefetchFirst,
          PolicySetup::ApsOnly, PolicySetup::Padc, PolicySetup::PadcRank,
          PolicySetup::ApsNoUrgent, PolicySetup::PadcNoUrgent,
          PolicySetup::ApdOnly}) {
        const ConfigErrors errors = applyPolicy(base, setup).validate();
        EXPECT_TRUE(errors.ok())
            << policyLabel(setup) << ": " << errors.str();
    }
}

TEST(ConfigValidate, RejectsBadCoreCount)
{
    SystemConfig cfg = SystemConfig::baseline(4);
    cfg.num_cores = 0;
    EXPECT_TRUE(mentions(cfg.validate(), "num_cores"));
    cfg.num_cores = 65; // > kMaxCores (truncated_mask is 64 bits)
    EXPECT_TRUE(mentions(cfg.validate(), "num_cores"));
}

TEST(ConfigValidate, RejectsZeroMshrs)
{
    SystemConfig cfg = SystemConfig::baseline(2);
    cfg.mshr_per_l2 = 0;
    EXPECT_TRUE(mentions(cfg.validate(), "mshr_per_l2"));
}

TEST(ConfigValidate, RejectsInvertedWriteDrainWatermarks)
{
    SystemConfig cfg = SystemConfig::baseline(2);
    cfg.sched.write_drain_low = cfg.sched.write_drain_high;
    EXPECT_TRUE(mentions(cfg.validate(), "sched.write_drain_low"));
}

TEST(ConfigValidate, RejectsOutOfRangePromotionThreshold)
{
    SystemConfig cfg = SystemConfig::baseline(2);
    cfg.sched.promotion_threshold = 1.5;
    EXPECT_TRUE(mentions(cfg.validate(), "sched.promotion_threshold"));
}

TEST(ConfigValidate, RejectsNonPowerOfTwoCacheSets)
{
    SystemConfig cfg = SystemConfig::baseline(2);
    cfg.l2.size_bytes = cfg.l2.ways * 64 * 3; // 3 sets
    EXPECT_TRUE(mentions(cfg.validate(), "l2.size_bytes"))
        << cfg.validate().str();
}

TEST(ConfigValidate, RejectsInconsistentDramTiming)
{
    SystemConfig cfg = SystemConfig::baseline(2);
    cfg.dram.timing.tRC =
        cfg.dram.timing.tRAS + cfg.dram.timing.tRP - 1;
    EXPECT_TRUE(mentions(cfg.validate(), "dram.timing.tRC"));
}

TEST(ConfigValidate, RejectsPrefetchEnabledWithoutAlgorithm)
{
    SystemConfig cfg = SystemConfig::baseline(2);
    cfg.prefetch_enabled = true;
    cfg.prefetcher.kind = PrefetcherKind::None;
    EXPECT_TRUE(mentions(cfg.validate(), "prefetcher.kind"));
    // Disabling prefetch makes the same kind acceptable.
    cfg.prefetch_enabled = false;
    EXPECT_TRUE(cfg.validate().ok()) << cfg.validate().str();
}

TEST(ConfigValidate, ViolationsAccumulateInsteadOfFailingFast)
{
    SystemConfig cfg = SystemConfig::baseline(2);
    cfg.mshr_per_l2 = 0;
    cfg.sched.promotion_threshold = -0.5;
    cfg.dram.timing.tBURST = 0;
    const ConfigErrors errors = cfg.validate();
    EXPECT_GE(errors.errors().size(), 3u) << errors.str();
    EXPECT_TRUE(mentions(errors, "mshr_per_l2"));
    EXPECT_TRUE(mentions(errors, "sched.promotion_threshold"));
    EXPECT_TRUE(mentions(errors, "dram.timing.tBURST"));
    // str() joins every diagnostic as "field: message".
    EXPECT_NE(errors.str().find("mshr_per_l2:"), std::string::npos);
    EXPECT_NE(errors.str().find("dram.timing.tBURST:"),
              std::string::npos);
}

TEST(ConfigValidate, SystemConstructionThrowsNamingTheField)
{
    SystemConfig cfg =
        applyPolicy(SystemConfig::baseline(1), PolicySetup::DemandFirst);
    cfg.mshr_per_l2 = 0;
    RunOptions options;
    options.instructions = 100;
    options.warmup = 0;
    try {
        runMix(cfg, {"milc_06"}, options);
        FAIL() << "invalid config was accepted";
    } catch (const std::invalid_argument &e) {
        EXPECT_NE(std::string(e.what()).find("mshr_per_l2"),
                  std::string::npos)
            << e.what();
    }
}

TEST(ConfigValidate, MixSizeMismatchThrowsDescriptively)
{
    const SystemConfig cfg =
        applyPolicy(SystemConfig::baseline(2), PolicySetup::DemandFirst);
    RunOptions options;
    options.instructions = 100;
    options.warmup = 0;
    try {
        runMix(cfg, {"milc_06"}, options); // 1 profile, 2 cores
        FAIL() << "mismatched mix was accepted";
    } catch (const std::invalid_argument &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("1 profiles"), std::string::npos) << what;
        EXPECT_NE(what.find("2-core"), std::string::npos) << what;
    }
}

} // namespace
} // namespace padc::sim
