/**
 * @file
 * Paper-shape regression tests: small, fast versions of the claims the
 * benchmark binaries reproduce at full size. If a refactor breaks one
 * of the paper's qualitative results, it fails here, in CI, not in a
 * 20-minute bench run.
 *
 *  - Fig. 1 crossover: demand-pref-equal beats demand-first for the
 *    prefetch-friendly libquantum; demand-first beats demand-pref-equal
 *    for the prefetch-unfriendly milc.
 *  - Prefetching helps friendly workloads a lot (Fig. 6).
 *  - APD cuts useless-prefetch traffic on unfriendly workloads (Fig. 8).
 *  - PADC beats both rigid policies on the mixed 4-core case study
 *    (Figs. 14-15).
 *  - RBHU ordering: demand-pref-equal >= demand-first (Table 7).
 */

#include <gtest/gtest.h>

#include "sim/experiment.hh"

namespace padc::sim
{
namespace
{

RunMetrics
runSingle(const std::string &profile, PolicySetup setup,
          std::uint64_t instructions = 150000)
{
    const SystemConfig cfg =
        applyPolicy(SystemConfig::baseline(1), setup);
    RunOptions opt;
    opt.instructions = instructions;
    opt.warmup = instructions / 4;
    return runMix(cfg, {profile}, opt);
}

TEST(PaperShapeTest, Fig1FriendlySideEqualBeatsDemandFirst)
{
    const double eq =
        runSingle("libquantum_06", PolicySetup::DemandPrefEqual)
            .cores[0]
            .ipc;
    const double df =
        runSingle("libquantum_06", PolicySetup::DemandFirst).cores[0].ipc;
    EXPECT_GT(eq, df);
}

TEST(PaperShapeTest, Fig1UnfriendlySideDemandFirstBeatsEqual)
{
    const double eq =
        runSingle("milc_06", PolicySetup::DemandPrefEqual).cores[0].ipc;
    const double df =
        runSingle("milc_06", PolicySetup::DemandFirst).cores[0].ipc;
    EXPECT_GT(df, eq * 1.05);
}

TEST(PaperShapeTest, PrefetchingHelpsFriendlyWorkloads)
{
    const double nopref =
        runSingle("libquantum_06", PolicySetup::NoPref).cores[0].ipc;
    const double padc =
        runSingle("libquantum_06", PolicySetup::Padc).cores[0].ipc;
    EXPECT_GT(padc, nopref * 1.25);
}

TEST(PaperShapeTest, PrefetchFirstIsWorstForUnfriendly)
{
    // Footnote 2: prefetch-first is the worst policy overall.
    const double pf =
        runSingle("milc_06", PolicySetup::PrefetchFirst).cores[0].ipc;
    const double df =
        runSingle("milc_06", PolicySetup::DemandFirst).cores[0].ipc;
    EXPECT_GT(df, pf);
}

TEST(PaperShapeTest, ApdCutsUselessTrafficOnUnfriendly)
{
    const auto df = runSingle("omnetpp_06", PolicySetup::DemandFirst);
    const auto padc = runSingle("omnetpp_06", PolicySetup::Padc);
    EXPECT_LT(padc.trafficPrefUseless(),
              df.trafficPrefUseless() * 0.9);
    // ... without losing performance.
    EXPECT_GT(padc.cores[0].ipc, df.cores[0].ipc * 0.95);
}

TEST(PaperShapeTest, ApsTracksBestRigidPolicyPerClass)
{
    // Friendly: APS within a few percent of demand-pref-equal.
    const double eq_f =
        runSingle("libquantum_06", PolicySetup::DemandPrefEqual)
            .cores[0]
            .ipc;
    const double aps_f =
        runSingle("libquantum_06", PolicySetup::ApsOnly).cores[0].ipc;
    EXPECT_GT(aps_f, eq_f * 0.93);

    // Unfriendly: APS within a few percent of demand-first.
    const double df_u =
        runSingle("milc_06", PolicySetup::DemandFirst).cores[0].ipc;
    const double aps_u =
        runSingle("milc_06", PolicySetup::ApsOnly).cores[0].ipc;
    EXPECT_GT(aps_u, df_u * 0.93);
}

TEST(PaperShapeTest, RbhuOrderingEqualAtLeastDemandFirst)
{
    const double rbhu_eq =
        runSingle("swim_00", PolicySetup::DemandPrefEqual).cores[0].rbhu;
    const double rbhu_df =
        runSingle("swim_00", PolicySetup::DemandFirst).cores[0].rbhu;
    EXPECT_GE(rbhu_eq + 0.02, rbhu_df);
}

TEST(PaperShapeTest, MixedCaseStudyPadcBeatsRigidPolicies)
{
    const SystemConfig base = SystemConfig::baseline(4);
    RunOptions opt;
    opt.instructions = 60000;
    opt.warmup = 15000;
    AloneIpcCache alone(base, opt);
    const workload::Mix mix = workload::caseStudyMixed();

    const double ws_df =
        evaluateMix(applyPolicy(base, PolicySetup::DemandFirst), mix,
                    opt, alone)
            .summary.ws;
    const double ws_eq =
        evaluateMix(applyPolicy(base, PolicySetup::DemandPrefEqual), mix,
                    opt, alone)
            .summary.ws;
    const double ws_padc =
        evaluateMix(applyPolicy(base, PolicySetup::Padc), mix, opt,
                    alone)
            .summary.ws;
    EXPECT_GT(ws_padc, ws_df);
    EXPECT_GT(ws_padc, ws_eq);
}

TEST(PaperShapeTest, MilcAccuracyShowsPhases)
{
    // Fig. 4(b): milc's measured accuracy swings by a wide margin.
    const SystemConfig cfg =
        applyPolicy(SystemConfig::baseline(1), PolicySetup::DemandFirst);
    RunOptions opt;
    opt.instructions = 300000;
    const workload::Mix mix = {"milc_06"};
    // Use the System directly for the timeline.
    std::vector<std::unique_ptr<workload::SyntheticTrace>> traces;
    traces.push_back(std::make_unique<workload::SyntheticTrace>(
        workload::traceParamsFor(mix, 0, 0)));
    System system(cfg, {traces[0].get()});
    system.run(opt.instructions, opt.max_cycles);
    double lo = 1.0;
    double hi = 0.0;
    for (const auto &[cycle, acc] : system.accuracyTimeline()) {
        lo = std::min(lo, acc);
        hi = std::max(hi, acc);
    }
    EXPECT_GT(hi - lo, 0.3);
}

} // namespace
} // namespace padc::sim
