/**
 * @file
 * Randomized cross-configuration invariant tests ("fuzz light"): short
 * simulations across a sweep of system shapes, asserting the global
 * invariants that must hold for any configuration:
 *
 *  - every core completes (no deadlock within a generous cycle cap),
 *  - fills delivered == reads serviced by the controllers,
 *  - usefulness never exceeds what was prefetched,
 *  - PUC <= PSC (+1 slack for boundary promotion), PAR in [0,1],
 *  - row outcome classes partition all serviced reads,
 *  - identical configuration => identical results (determinism).
 */

#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "sim/metrics.hh"
#include "sim/system.hh"
#include "workload/generator.hh"
#include "workload/mixes.hh"

namespace padc::sim
{
namespace
{

struct Shape
{
    std::uint32_t cores;
    SchedPolicyKind policy;
    bool apd;
    std::uint32_t channels;
    PrefetcherKind prefetcher;
    bool shared_l2;
    RowPolicy row_policy;
};

class InvariantProperty : public ::testing::TestWithParam<Shape>
{
};

std::unique_ptr<System>
runShape(const Shape &shape,
         std::vector<std::unique_ptr<workload::SyntheticTrace>> *traces)
{
    SystemConfig cfg = SystemConfig::baseline(shape.cores);
    cfg.sched.kind = shape.policy;
    cfg.sched.apd_enabled = shape.apd;
    cfg.dram.geometry.channels = shape.channels;
    cfg.prefetcher.kind = shape.prefetcher;
    cfg.shared_l2 = shape.shared_l2;
    if (shape.shared_l2) {
        cfg.l2.size_bytes *= shape.cores;
        cfg.mshr_per_l2 = cfg.sched.request_buffer_size;
    }
    cfg.sched.row_policy = shape.row_policy;

    const auto mixes = workload::randomMixes(1, shape.cores, 0xF00D);
    std::vector<core::TraceSource *> sources;
    for (std::uint32_t c = 0; c < shape.cores; ++c) {
        traces->push_back(std::make_unique<workload::SyntheticTrace>(
            workload::traceParamsFor(mixes[0], c, 3)));
        sources.push_back(traces->back().get());
    }
    auto system = std::make_unique<System>(cfg, std::move(sources));
    system->run(8000, 30000000);
    return system;
}

TEST_P(InvariantProperty, GlobalInvariantsHold)
{
    std::vector<std::unique_ptr<workload::SyntheticTrace>> traces;
    const auto system = runShape(GetParam(), &traces);
    const SystemConfig &cfg = system->config();

    std::uint64_t fills = 0;
    for (CoreId i = 0; i < cfg.num_cores; ++i) {
        ASSERT_TRUE(system->result(i).done) << "core " << i << " stuck";
        const CoreMemStats &ms = system->memStats(i);
        fills += ms.demand_fills + ms.prefetch_fills;
        EXPECT_LE(ms.useful_prefetch_fills,
                  ms.prefetch_fills + ms.promotions);
        EXPECT_LE(system->result(i).pref_used,
                  system->result(i).pref_sent + 1);
        EXPECT_GE(system->tracker().accuracy(i), 0.0);
        EXPECT_LE(system->tracker().accuracy(i), 1.0);
        EXPECT_LE(ms.fills_row_hit, ms.fills_total);
        EXPECT_LE(ms.useful_req_row_hits, ms.useful_req_fills);
    }

    std::uint64_t serviced = 0;
    for (std::uint32_t ch = 0; ch < system->numControllers(); ++ch) {
        const auto &cs = system->controller(ch).stats();
        serviced +=
            cs.demand_reads + cs.prefetch_reads + cs.forwarded_reads;
        // Row outcomes partition the serviced (non-forwarded) reads.
        EXPECT_EQ(cs.read_row_hits + cs.read_row_closed +
                      cs.read_row_conflicts,
                  cs.demand_reads + cs.prefetch_reads);
    }
    EXPECT_EQ(fills, serviced);

    const RunMetrics metrics = collectMetrics(*system);
    for (const auto &m : metrics.cores) {
        EXPECT_GT(m.ipc, 0.0);
        EXPECT_GE(m.acc, 0.0);
        EXPECT_LE(m.acc, 1.0);
        EXPECT_GE(m.cov, 0.0);
        EXPECT_LE(m.cov, 1.0);
        EXPECT_GE(m.rbhu, 0.0);
        EXPECT_LE(m.rbhu, 1.0);
    }

    // Stats export is total and finite.
    const StatSet stats = system->exportStats();
    EXPECT_TRUE(stats.has("cycles"));
    EXPECT_TRUE(stats.has("dram.reads"));
    for (const auto &[name, value] : stats.entries()) {
        EXPECT_GE(value, 0.0) << name;
        EXPECT_EQ(value, value) << name << " is NaN";
    }
}

TEST_P(InvariantProperty, Deterministic)
{
    std::vector<std::unique_ptr<workload::SyntheticTrace>> traces_a;
    std::vector<std::unique_ptr<workload::SyntheticTrace>> traces_b;
    const auto a = runShape(GetParam(), &traces_a);
    const auto b = runShape(GetParam(), &traces_b);
    EXPECT_EQ(a->cycles(), b->cycles());
    const StatSet sa = a->exportStats();
    const StatSet sb = b->exportStats();
    ASSERT_EQ(sa.entries().size(), sb.entries().size());
    for (std::size_t i = 0; i < sa.entries().size(); ++i) {
        EXPECT_EQ(sa.entries()[i].first, sb.entries()[i].first);
        EXPECT_DOUBLE_EQ(sa.entries()[i].second, sb.entries()[i].second)
            << sa.entries()[i].first;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, InvariantProperty,
    ::testing::Values(
        Shape{1, SchedPolicyKind::FrFcfs, false, 1, PrefetcherKind::Stream,
              false, RowPolicy::Open},
        Shape{2, SchedPolicyKind::DemandFirst, false, 1,
              PrefetcherKind::Stride, false, RowPolicy::Open},
        Shape{2, SchedPolicyKind::Aps, true, 2, PrefetcherKind::Stream,
              false, RowPolicy::Open},
        Shape{4, SchedPolicyKind::Aps, true, 1, PrefetcherKind::Cdc,
              false, RowPolicy::Closed},
        Shape{4, SchedPolicyKind::Aps, true, 2, PrefetcherKind::Markov,
              true, RowPolicy::Open},
        Shape{4, SchedPolicyKind::PrefetchFirst, false, 1,
              PrefetcherKind::Stream, false, RowPolicy::Open},
        Shape{8, SchedPolicyKind::Aps, true, 1, PrefetcherKind::Stream,
              false, RowPolicy::Open}));

} // namespace
} // namespace padc::sim
