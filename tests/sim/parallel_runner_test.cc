/**
 * @file
 * Tests for the ParallelExperimentRunner: index coverage, result
 * ordering, thread-count independence of results, reuse across batches,
 * and concurrent AloneIpcCache access (the TSan preset exercises the
 * locking here under real contention).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <vector>

#include "sim/experiment.hh"
#include "sim/parallel.hh"

namespace padc::sim
{
namespace
{

TEST(ParallelRunner, RunsEveryIndexExactlyOnce)
{
    ParallelExperimentRunner runner(4);
    constexpr std::size_t kJobs = 257; // not a multiple of the pool size
    std::vector<std::atomic<int>> hits(kJobs);
    runner.forEach(kJobs, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < kJobs; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ParallelRunner, MapOrdersResultsByIndexNotCompletion)
{
    ParallelExperimentRunner runner(4);
    const std::vector<std::uint64_t> out = runner.map<std::uint64_t>(
        100, [](std::size_t i) {
            // Unequal work so completion order differs from index order.
            volatile std::uint64_t acc = 0;
            for (std::size_t k = 0; k < (i % 7) * 1000; ++k)
                acc += k;
            return static_cast<std::uint64_t>(i * i);
        });
    ASSERT_EQ(out.size(), 100u);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], i * i);
}

TEST(ParallelRunner, ResultsIndependentOfThreadCount)
{
    auto compute = [](ParallelExperimentRunner &runner) {
        return runner.map<double>(37, [](std::size_t i) {
            return static_cast<double>(i) * 1.5 + 1.0 / (i + 1);
        });
    };
    ParallelExperimentRunner serial(1);
    ParallelExperimentRunner pooled(8);
    EXPECT_EQ(compute(serial), compute(pooled));
}

TEST(ParallelRunner, ReusableAcrossBatches)
{
    ParallelExperimentRunner runner(3);
    for (int round = 0; round < 5; ++round) {
        std::atomic<std::size_t> sum{0};
        const std::size_t n = 10 + round * 13;
        runner.forEach(n, [&](std::size_t i) { sum += i; });
        EXPECT_EQ(sum.load(), n * (n - 1) / 2);
    }
    runner.forEach(0, [](std::size_t) { FAIL() << "empty batch ran a job"; });
}

TEST(ParallelRunner, ThreadCountRespectsConstructorArg)
{
    ParallelExperimentRunner one(1);
    EXPECT_EQ(one.threadCount(), 1u);
    ParallelExperimentRunner four(4);
    EXPECT_EQ(four.threadCount(), 4u);
}

TEST(AloneIpcCacheParallel, ConcurrentLookupsMatchSerial)
{
    const SystemConfig base = SystemConfig::baseline(2);
    RunOptions options;
    options.instructions = 2000;
    options.warmup = 0;

    // Two mixes sharing a profile: exercises cache hits under contention.
    const std::vector<workload::Mix> mixes = {
        {"libquantum_06", "milc_06"},
        {"milc_06", "swim_00"},
    };

    AloneIpcCache serial_cache(base, options);
    std::vector<double> serial;
    for (std::size_t i = 0; i < mixes.size(); ++i)
        for (std::uint32_t c = 0; c < mixes[i].size(); ++c)
            serial.push_back(serial_cache.ipcAlone(mixes[i][c], c, i));

    AloneIpcCache parallel_cache(base, options);
    ParallelExperimentRunner runner(4);
    parallel_cache.prewarm(mixes, 0, runner);
    std::vector<double> parallel;
    for (std::size_t i = 0; i < mixes.size(); ++i)
        for (std::uint32_t c = 0; c < mixes[i].size(); ++c)
            parallel.push_back(parallel_cache.ipcAlone(mixes[i][c], c, i));

    EXPECT_EQ(serial, parallel);
}

TEST(SweepApi, EvaluateSweepMatchesSerialEvaluateMix)
{
    const SystemConfig base = SystemConfig::baseline(2);
    RunOptions options;
    options.instructions = 2000;
    options.warmup = 0;
    const workload::Mix mix = {"libquantum_06", "milc_06"};

    std::vector<SweepPoint> points;
    for (const auto setup :
         {PolicySetup::DemandFirst, PolicySetup::Padc}) {
        points.push_back({applyPolicy(base, setup), mix, options});
    }

    AloneIpcCache serial_cache(base, options);
    std::vector<MixEvaluation> serial;
    for (const auto &point : points)
        serial.push_back(
            evaluateMix(point.config, point.mix, point.options,
                        serial_cache));

    AloneIpcCache parallel_cache(base, options);
    ParallelExperimentRunner runner(4);
    const std::vector<Result<MixEvaluation>> pooled =
        evaluateSweep(points, parallel_cache, runner);

    ASSERT_EQ(pooled.size(), serial.size());
    for (std::size_t i = 0; i < pooled.size(); ++i) {
        EXPECT_TRUE(pooled[i].ok());
        EXPECT_EQ(pooled[i].value.summary.ws, serial[i].summary.ws);
        EXPECT_EQ(pooled[i].value.summary.hs, serial[i].summary.hs);
        EXPECT_EQ(pooled[i].value.summary.uf, serial[i].summary.uf);
        EXPECT_EQ(pooled[i].value.metrics.totalTraffic(),
                  serial[i].metrics.totalTraffic());
    }
}

} // namespace
} // namespace padc::sim
