/**
 * @file
 * Failure-injection tests for the fault-tolerant experiment stack:
 * the parallel runner's exception contract, PADC_THREADS parsing,
 * RunStatus propagation from the cycle cap, and per-point sweep
 * outcomes (Failed / Truncated) that never abort the whole sweep.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "sim/experiment.hh"
#include "sim/parallel.hh"

namespace padc::sim
{
namespace
{

// --- runner exception contract ----------------------------------------

TEST(RunnerFaults, ThrowingJobDoesNotAbortOrDeadlock)
{
    ParallelExperimentRunner runner(4);
    constexpr std::size_t kJobs = 97;
    std::vector<std::atomic<int>> hits(kJobs);
    EXPECT_THROW(
        runner.forEach(kJobs,
                       [&](std::size_t i) {
                           ++hits[i];
                           if (i == 13)
                               throw std::runtime_error("injected");
                       }),
        std::runtime_error);
    // Every index still ran exactly once; the batch fully drained.
    for (std::size_t i = 0; i < kJobs; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(RunnerFaults, LowestIndexExceptionRethrownDeterministically)
{
    // Several jobs throw; forEach must surface the lowest-index one no
    // matter which thread finished first.
    for (unsigned threads : {1u, 4u}) {
        ParallelExperimentRunner runner(threads);
        std::string what;
        try {
            runner.forEach(50, [](std::size_t i) {
                if (i % 10 == 7)
                    throw std::runtime_error("boom@" + std::to_string(i));
            });
            FAIL() << "forEach did not rethrow";
        } catch (const std::runtime_error &e) {
            what = e.what();
        }
        EXPECT_EQ(what, "boom@7") << "threads=" << threads;
    }
}

TEST(RunnerFaults, PoolStaysUsableAfterFailedBatch)
{
    ParallelExperimentRunner runner(3);
    EXPECT_THROW(runner.forEach(20,
                                [](std::size_t i) {
                                    if (i == 0)
                                        throw std::runtime_error("first");
                                }),
                 std::runtime_error);
    // The pool must not be poisoned: a clean batch still works...
    std::atomic<std::size_t> sum{0};
    runner.forEach(100, [&](std::size_t i) { sum += i; });
    EXPECT_EQ(sum.load(), 100u * 99u / 2u);
    // ... and map still orders results by index.
    const auto out =
        runner.map<std::size_t>(10, [](std::size_t i) { return i * 3; });
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], i * 3);
}

TEST(RunnerFaults, TryForEachReportsPerIndexErrors)
{
    ParallelExperimentRunner runner(4);
    const std::vector<std::exception_ptr> errors =
        runner.tryForEach(23, [](std::size_t i) {
            if (i % 2 == 0)
                throw std::invalid_argument("even@" + std::to_string(i));
        });
    ASSERT_EQ(errors.size(), 23u);
    for (std::size_t i = 0; i < errors.size(); ++i) {
        if (i % 2 == 0) {
            ASSERT_TRUE(errors[i]) << "index " << i;
            try {
                std::rethrow_exception(errors[i]);
                FAIL();
            } catch (const std::invalid_argument &e) {
                EXPECT_EQ(std::string(e.what()),
                          "even@" + std::to_string(i));
            }
        } else {
            EXPECT_FALSE(errors[i]) << "index " << i;
        }
    }
}

TEST(RunnerFaults, TryForEachEmptyBatchReturnsNoErrors)
{
    ParallelExperimentRunner runner(2);
    EXPECT_TRUE(runner.tryForEach(0, [](std::size_t) {
                          throw std::runtime_error("never runs");
                      }).empty());
}

// --- PADC_THREADS parsing ---------------------------------------------

/** RAII guard restoring PADC_THREADS after each case. */
class ThreadsEnvGuard
{
  public:
    ThreadsEnvGuard()
    {
        const char *old = std::getenv("PADC_THREADS");
        had_ = old != nullptr;
        if (had_)
            saved_ = old;
    }

    ~ThreadsEnvGuard()
    {
        if (had_)
            ::setenv("PADC_THREADS", saved_.c_str(), 1);
        else
            ::unsetenv("PADC_THREADS");
    }

  private:
    bool had_ = false;
    std::string saved_;
};

unsigned
hwThreads()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw >= 1 ? hw : 1;
}

TEST(ThreadsEnv, ValidValueIsUsed)
{
    ThreadsEnvGuard guard;
    ::setenv("PADC_THREADS", "3", 1);
    EXPECT_EQ(defaultThreadCount(), 3u);
    ::setenv("PADC_THREADS", "1", 1);
    EXPECT_EQ(defaultThreadCount(), 1u);
    // strtol convention: leading whitespace is permitted.
    ::setenv("PADC_THREADS", " 4", 1);
    EXPECT_EQ(defaultThreadCount(), 4u);
}

TEST(ThreadsEnv, UnsetFallsBackToHardwareConcurrency)
{
    ThreadsEnvGuard guard;
    ::unsetenv("PADC_THREADS");
    EXPECT_EQ(defaultThreadCount(), hwThreads());
}

TEST(ThreadsEnv, InvalidValuesFallBackWithoutSerializing)
{
    ThreadsEnvGuard guard;
    // None of these may be honored verbatim: zero/negative would break
    // the runner, trailing garbage and overflow indicate a typo.
    for (const char *bad : {"0", "-2", "abc", "7abc", "4 ", "",
                            "99999999999999999999"}) {
        ::setenv("PADC_THREADS", bad, 1);
        EXPECT_EQ(defaultThreadCount(), hwThreads())
            << "PADC_THREADS=\"" << bad << "\"";
    }
}

TEST(ThreadsEnv, OversizedValueClampedToMax)
{
    ThreadsEnvGuard guard;
    ::setenv("PADC_THREADS", "2000", 1);
    EXPECT_EQ(defaultThreadCount(), kMaxThreads);
}

// --- RunStatus propagation --------------------------------------------

TEST(RunStatusFaults, TinyCycleCapReportsTruncation)
{
    const SystemConfig config =
        applyPolicy(SystemConfig::baseline(1), PolicySetup::DemandFirst);
    RunOptions options;
    options.instructions = 100000; // unreachable under the tiny cap
    options.warmup = 0;
    options.max_cycles = 200;

    RunStatus status;
    const RunMetrics metrics =
        runMix(config, {"milc_06"}, options, &status);
    EXPECT_FALSE(status.converged());
    EXPECT_EQ(status.cores_truncated, 1u);
    EXPECT_EQ(status.cores_completed, 0u);
    EXPECT_EQ(status.truncated_mask, 1u);
    EXPECT_EQ(status.max_cycles, 200u);
    // The diagnostic names the core and the cap.
    EXPECT_NE(status.detail().find("core 0"), std::string::npos);
    EXPECT_NE(status.detail().find("200-cycle cap"), std::string::npos);
    // Partial metrics are still produced (frozen at the cap).
    ASSERT_EQ(metrics.cores.size(), 1u);
    EXPECT_LT(metrics.cores[0].instructions, options.instructions);
}

TEST(RunStatusFaults, ConvergedRunReportsNoTruncation)
{
    const SystemConfig config =
        applyPolicy(SystemConfig::baseline(1), PolicySetup::DemandFirst);
    RunOptions options;
    options.instructions = 2000;
    options.warmup = 0;

    RunStatus status;
    runMix(config, {"milc_06"}, options, &status);
    EXPECT_TRUE(status.converged());
    EXPECT_EQ(status.cores_completed, 1u);
    EXPECT_EQ(status.truncated_mask, 0u);
    EXPECT_EQ(status.detail(), "");
}

// --- per-point sweep outcomes -----------------------------------------

TEST(SweepFaults, FailedPointDoesNotAbortSweep)
{
    const SystemConfig base = SystemConfig::baseline(2);
    RunOptions options;
    options.instructions = 2000;
    options.warmup = 0;
    const workload::Mix mix = {"libquantum_06", "milc_06"};

    SystemConfig broken = applyPolicy(base, PolicySetup::DemandFirst);
    broken.mshr_per_l2 = 0; // System construction throws

    const std::vector<SweepPoint> points = {
        {applyPolicy(base, PolicySetup::DemandFirst), mix, options},
        {broken, mix, options},
        {applyPolicy(base, PolicySetup::Padc), mix, options},
    };

    ParallelExperimentRunner runner(4);
    AloneIpcCache alone(base, options);
    const auto results = evaluateSweep(points, alone, runner);

    ASSERT_EQ(results.size(), 3u);
    EXPECT_TRUE(results[0].ok());
    EXPECT_TRUE(results[2].ok());

    EXPECT_EQ(results[1].outcome.status, PointStatus::Failed);
    EXPECT_NE(results[1].outcome.detail.find("mshr_per_l2"),
              std::string::npos)
        << "diagnostic: " << results[1].outcome.detail;
    // A Failed point carries a default-empty value, not stale garbage.
    EXPECT_TRUE(results[1].value.metrics.cores.empty());

    // The good points match a serial evaluation exactly.
    AloneIpcCache serial_alone(base, options);
    const MixEvaluation serial =
        evaluateMix(points[0].config, mix, options, serial_alone);
    EXPECT_EQ(results[0].value.summary.ws, serial.summary.ws);
    EXPECT_EQ(results[0].value.metrics.totalTraffic(),
              serial.metrics.totalTraffic());
}

TEST(SweepFaults, TruncatedPointCarriesDiagnosticAndPartialValue)
{
    const SystemConfig base = SystemConfig::baseline(1);
    RunOptions ok_options;
    ok_options.instructions = 2000;
    ok_options.warmup = 0;
    RunOptions capped = ok_options;
    capped.instructions = 100000;
    capped.max_cycles = 200;

    const workload::Mix mix = {"milc_06"};
    const std::vector<SweepPoint> points = {
        {applyPolicy(base, PolicySetup::DemandFirst), mix, ok_options},
        {applyPolicy(base, PolicySetup::DemandFirst), mix, capped},
    };

    ParallelExperimentRunner runner(2);
    const auto results = runSweep(points, runner);

    ASSERT_EQ(results.size(), 2u);
    EXPECT_TRUE(results[0].ok());
    EXPECT_EQ(results[1].outcome.status, PointStatus::Truncated);
    EXPECT_NE(results[1].outcome.detail.find("cycle cap"),
              std::string::npos)
        << "diagnostic: " << results[1].outcome.detail;
    // Truncated points keep their frozen partial metrics.
    ASSERT_EQ(results[1].value.cores.size(), 1u);
    EXPECT_LT(results[1].value.cores[0].instructions,
              capped.instructions);
}

TEST(SweepFaults, DescribePointNamesPolicyMixAndSeed)
{
    const SystemConfig base = SystemConfig::baseline(2);
    RunOptions options;
    options.mix_seed = 7;
    const SweepPoint point{applyPolicy(base, PolicySetup::Padc),
                           {"milc_06", "swim_00"}, options};
    const std::string text = describePoint(point);
    EXPECT_NE(text.find("apd"), std::string::npos) << text;
    EXPECT_NE(text.find("milc_06 swim_00"), std::string::npos) << text;
    EXPECT_NE(text.find("seed 7"), std::string::npos) << text;
}

TEST(SweepFaults, PointStatusToStringCoversAllStates)
{
    EXPECT_STREQ(toString(PointStatus::Ok), "ok");
    EXPECT_STREQ(toString(PointStatus::Truncated), "truncated");
    EXPECT_STREQ(toString(PointStatus::Failed), "failed");
}

} // namespace
} // namespace padc::sim
