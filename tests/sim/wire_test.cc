/**
 * @file
 * Tests for the process-pool wire protocol: frame I/O over real pipes,
 * incremental frame reassembly (FrameBuffer), task/result/point
 * round-trips (bit-exact doubles, full-width u64s, every keyed config
 * field), and the PADC_FAULT_INJECT parser + schedule.
 */

#include "sim/wire.hh"

#include <unistd.h>

#include <cmath>
#include <cstring>
#include <string>

#include <gtest/gtest.h>

#include "exp/json.hh"
#include "sim/journal.hh"

namespace padc::sim::wire
{
namespace
{

SweepPoint
fancyPoint()
{
    SweepPoint point;
    point.config = SystemConfig::baseline(2);
    point.config = applyPolicy(point.config, PolicySetup::Padc);
    point.config.prefetcher.degree = 7;
    point.config.sched.promotion_threshold = 0.1875;
    point.config.sched.drop_thresholds = {1, 2, 3, 4};
    point.config.sched.drop_accuracy_bounds = {0.25, 0.5, 0.75};
    point.config.dram.timing.tRCD = 13;
    point.config.dram.geometry.permutation_interleaving = true;
    point.mix = {"mcf_06", "libquantum_06"};
    point.options.instructions = 12345;
    point.options.warmup = 678;
    point.options.max_cycles = 90000;
    // Past 2^53: a double-typed JSON number would corrupt this.
    point.options.mix_seed = (1ULL << 60) + 3;
    return point;
}

std::string
encodePointDoc(const SweepPoint &point)
{
    exp::JsonWriter writer;
    writer.beginObject();
    encodePoint(writer, "point", point);
    writer.endObject();
    return writer.str();
}

TEST(WirePoint, RoundTripsEveryKeyedField)
{
    const SweepPoint point = fancyPoint();
    const std::string doc = encodePointDoc(point);

    exp::JsonValue parsed;
    std::string error;
    ASSERT_TRUE(exp::parseJson(doc, &parsed, &error)) << error;
    SweepPoint decoded;
    ASSERT_TRUE(decodePoint(*parsed.find("point"), &decoded, &error))
        << error;

    // sweepPointKey hashes every field the executor keys on; equal keys
    // means the decode lost nothing the sweep cares about.
    EXPECT_EQ(sweepPointKey(decoded), sweepPointKey(point));
    EXPECT_EQ(decoded.mix, point.mix);
    EXPECT_EQ(decoded.options.mix_seed, point.options.mix_seed);
    EXPECT_EQ(decoded.config.sched.promotion_threshold,
              point.config.sched.promotion_threshold);
}

TEST(WirePoint, KeyedFieldChangesSurviveTheWire)
{
    // Mutate a representative field per layer and check the decoded
    // point keys differently from the unmutated one: a silently dropped
    // field would collapse both onto the same key.
    const SweepPoint base = fancyPoint();
    const std::uint64_t base_key = sweepPointKey(base);
    const auto reKey = [](const SweepPoint &p) {
        exp::JsonValue parsed;
        std::string error;
        SweepPoint decoded;
        EXPECT_TRUE(exp::parseJson(encodePointDoc(p), &parsed, &error));
        EXPECT_TRUE(
            decodePoint(*parsed.find("point"), &decoded, &error));
        return sweepPointKey(decoded);
    };

    SweepPoint p = base;
    p.config.prefetcher.distance += 1;
    EXPECT_NE(reKey(p), base_key);
    p = base;
    p.config.fdp.accuracy_high += 0.0625;
    EXPECT_NE(reKey(p), base_key);
    p = base;
    p.config.sched.drop_thresholds[2] += 1;
    EXPECT_NE(reKey(p), base_key);
    p = base;
    p.config.dram.timing.tRFC += 1;
    EXPECT_NE(reKey(p), base_key);
    p = base;
    p.options.mix_seed += 1;
    EXPECT_NE(reKey(p), base_key);
    p = base;
    p.mix = {"libquantum_06", "mcf_06"};
    EXPECT_NE(reKey(p), base_key);
}

TEST(WireTaskCodec, RunAndEvalTasksRoundTrip)
{
    WireTask task;
    task.kind = WireTask::Kind::Eval;
    task.index = (1ULL << 55) + 9;
    task.attempt = 3;
    task.point = fancyPoint();
    task.alone_base = SystemConfig::baseline(1);
    task.alone_options.instructions = 777;

    WireTask decoded;
    std::string error;
    ASSERT_TRUE(decodeTask(encodeTask(task), &decoded, &error)) << error;
    EXPECT_EQ(decoded.kind, WireTask::Kind::Eval);
    EXPECT_EQ(decoded.index, task.index);
    EXPECT_EQ(decoded.attempt, 3u);
    EXPECT_EQ(sweepPointKey(decoded.point), sweepPointKey(task.point));
    EXPECT_EQ(sweepPointKey({decoded.alone_base, {}, decoded.alone_options}),
              sweepPointKey({task.alone_base, {}, task.alone_options}));

    task.kind = WireTask::Kind::Run;
    ASSERT_TRUE(decodeTask(encodeTask(task), &decoded, &error)) << error;
    EXPECT_EQ(decoded.kind, WireTask::Kind::Run);

    EXPECT_FALSE(decodeTask("{\"padc\": \"nope\"}", &decoded, &error));
    EXPECT_FALSE(error.empty());
}

TEST(WireResultCodec, RunResultRoundTripsBitExactly)
{
    WireResult result;
    result.kind = WireTask::Kind::Run;
    result.index = 4;
    result.run.outcome.status = PointStatus::Truncated;
    result.run.outcome.detail = "cycle cap";
    CoreMetrics core;
    core.ipc = 0.1 + 0.2; // not exactly representable: bit-exactness test
    core.mpki = 17.125;
    core.spl = std::nextafter(3.0, 4.0);
    core.traffic_demand = (1ULL << 54) + 1;
    core.instructions = 123456789;
    core.cycles = 987654321;
    result.run.value.cores.push_back(core);

    WireResult decoded;
    std::string error;
    ASSERT_TRUE(decodeResult(encodeResult(result), &decoded, &error))
        << error;
    EXPECT_FALSE(decoded.hello);
    EXPECT_EQ(decoded.index, 4u);
    EXPECT_EQ(decoded.run.outcome.status, PointStatus::Truncated);
    EXPECT_EQ(decoded.run.outcome.detail, "cycle cap");
    ASSERT_EQ(decoded.run.value.cores.size(), 1u);
    EXPECT_EQ(decoded.run.value.cores[0].ipc, core.ipc);
    EXPECT_EQ(decoded.run.value.cores[0].spl, core.spl);
    EXPECT_EQ(decoded.run.value.cores[0].traffic_demand,
              core.traffic_demand);
    EXPECT_EQ(decoded.run.value.cores[0].cycles, core.cycles);
}

TEST(WireResultCodec, EvalResultCarriesSummaryAndHelloDecodes)
{
    WireResult result;
    result.kind = WireTask::Kind::Eval;
    result.index = 2;
    result.eval.outcome.status = PointStatus::Ok;
    result.eval.value.summary.ws = 1.75;
    result.eval.value.summary.hs = 0.875;
    result.eval.value.summary.uf = 1.0625;
    result.eval.value.summary.speedups = {1.0, 0.1 + 0.7};
    CoreMetrics core;
    core.ipc = 0.5;
    result.eval.value.metrics.cores.push_back(core);

    WireResult decoded;
    std::string error;
    ASSERT_TRUE(decodeResult(encodeResult(result), &decoded, &error))
        << error;
    EXPECT_EQ(decoded.eval.value.summary.ws, 1.75);
    EXPECT_EQ(decoded.eval.value.summary.speedups,
              result.eval.value.summary.speedups);
    ASSERT_EQ(decoded.eval.value.metrics.cores.size(), 1u);

    ASSERT_TRUE(decodeResult(encodeHello(), &decoded, &error)) << error;
    EXPECT_TRUE(decoded.hello);

    EXPECT_FALSE(decodeResult("[]", &decoded, &error));
    EXPECT_FALSE(error.empty());
}

TEST(WireFrames, RoundTripOverAPipe)
{
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    const std::string payload = "{\"x\": 1}";
    ASSERT_TRUE(writeFrame(fds[1], payload));
    ASSERT_TRUE(writeFrame(fds[1], std::string()));
    std::string read_back;
    ASSERT_TRUE(readFrame(fds[0], &read_back));
    EXPECT_EQ(read_back, payload);
    ASSERT_TRUE(readFrame(fds[0], &read_back));
    EXPECT_TRUE(read_back.empty());
    ::close(fds[1]);
    EXPECT_FALSE(readFrame(fds[0], &read_back)) << "EOF must fail";
    ::close(fds[0]);
}

TEST(WireFrames, OversizedLengthPrefixIsRejected)
{
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    const std::uint32_t huge = kMaxFramePayload + 1;
    char header[4];
    std::memcpy(header, &huge, 4);
    ASSERT_EQ(::write(fds[1], header, 4), 4);
    std::string payload;
    EXPECT_FALSE(readFrame(fds[0], &payload));
    ::close(fds[0]);
    ::close(fds[1]);
}

TEST(WireFrames, FrameBufferReassemblesAcrossArbitrarySplits)
{
    const std::string a = "{\"first\": 1}";
    const std::string b = "{\"second\": 2}";
    std::string stream;
    for (const std::string &payload : {a, b}) {
        const std::uint32_t n =
            static_cast<std::uint32_t>(payload.size());
        char header[4];
        header[0] = static_cast<char>(n & 0xff);
        header[1] = static_cast<char>((n >> 8) & 0xff);
        header[2] = static_cast<char>((n >> 16) & 0xff);
        header[3] = static_cast<char>((n >> 24) & 0xff);
        stream.append(header, 4);
        stream += payload;
    }

    // Feed one byte at a time: every split point is exercised.
    FrameBuffer frames;
    std::string got;
    std::vector<std::string> extracted;
    for (const char c : stream) {
        frames.feed(&c, 1);
        while (frames.next(&got))
            extracted.push_back(got);
    }
    ASSERT_EQ(extracted.size(), 2u);
    EXPECT_EQ(extracted[0], a);
    EXPECT_EQ(extracted[1], b);
    EXPECT_FALSE(frames.corrupt());

    const char bad[4] = {'\xff', '\xff', '\xff', '\x7f'};
    frames.feed(bad, 4);
    EXPECT_FALSE(frames.next(&got));
    EXPECT_TRUE(frames.corrupt());
}

TEST(FaultSpecParse, AcceptsTheDocumentedGrammar)
{
    FaultSpec spec = parseFaultSpec("crash:3");
    EXPECT_EQ(spec.mode, FaultSpec::Mode::Crash);
    EXPECT_EQ(spec.every, 3u);

    spec = parseFaultSpec("hang:7");
    EXPECT_EQ(spec.mode, FaultSpec::Mode::Hang);
    EXPECT_EQ(spec.every, 7u);

    spec = parseFaultSpec("exit:42:2");
    EXPECT_EQ(spec.mode, FaultSpec::Mode::Exit);
    EXPECT_EQ(spec.exit_code, 42);
    EXPECT_EQ(spec.every, 2u);

    spec = parseFaultSpec("poison:5");
    EXPECT_EQ(spec.mode, FaultSpec::Mode::Poison);
    EXPECT_EQ(spec.poison_index, 5u);

    EXPECT_FALSE(parseFaultSpec(nullptr).enabled());
    EXPECT_FALSE(parseFaultSpec("").enabled());
}

TEST(FaultSpecParse, MalformedSpecsWarnAndDisable)
{
    // Strict parse, never guess: anything off-grammar disables faults.
    testing::internal::CaptureStderr();
    EXPECT_FALSE(parseFaultSpec("crash").enabled());
    EXPECT_FALSE(parseFaultSpec("crash:").enabled());
    EXPECT_FALSE(parseFaultSpec("crash:0").enabled());
    EXPECT_FALSE(parseFaultSpec("crash:-3").enabled());
    EXPECT_FALSE(parseFaultSpec("crash:3x").enabled());
    EXPECT_FALSE(parseFaultSpec("meteor:3").enabled());
    EXPECT_FALSE(parseFaultSpec("exit:3").enabled());
    EXPECT_FALSE(parseFaultSpec("exit:999:3").enabled());
    EXPECT_FALSE(parseFaultSpec("exit:1:0").enabled());
    EXPECT_FALSE(parseFaultSpec("poison:").enabled());
    const std::string err = testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find("PADC_FAULT_INJECT"), std::string::npos);
}

TEST(FaultSchedule, PeriodicModesFireOnAttemptZeroOnly)
{
    FaultSpec crash;
    crash.mode = FaultSpec::Mode::Crash;
    crash.every = 3;
    // Fires on every third index (2, 5, 8, ...) so crash:1 hits all.
    EXPECT_FALSE(faultFires(crash, 0, 0));
    EXPECT_FALSE(faultFires(crash, 1, 0));
    EXPECT_TRUE(faultFires(crash, 2, 0));
    EXPECT_TRUE(faultFires(crash, 5, 0));
    // Retries must succeed or the merged sweep could never finish.
    EXPECT_FALSE(faultFires(crash, 2, 1));
    EXPECT_FALSE(faultFires(crash, 5, 2));

    FaultSpec none;
    EXPECT_FALSE(faultFires(none, 2, 0));
}

TEST(FaultSchedule, PoisonFiresOnEveryAttemptOfOneIndex)
{
    FaultSpec poison;
    poison.mode = FaultSpec::Mode::Poison;
    poison.poison_index = 4;
    EXPECT_TRUE(faultFires(poison, 4, 0));
    EXPECT_TRUE(faultFires(poison, 4, 1));
    EXPECT_TRUE(faultFires(poison, 4, 7));
    EXPECT_FALSE(faultFires(poison, 3, 0));
    EXPECT_FALSE(faultFires(poison, 5, 0));
}

} // namespace
} // namespace padc::sim::wire
