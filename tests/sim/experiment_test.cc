/**
 * @file
 * Unit tests for the experiment harness: policy setup application,
 * mix running, and the alone-IPC cache.
 */

#include <gtest/gtest.h>

#include <set>

#include "sim/experiment.hh"

namespace padc::sim
{
namespace
{

TEST(ApplyPolicyTest, SetupFlagMatrix)
{
    const SystemConfig base = SystemConfig::baseline(4);

    SystemConfig c = applyPolicy(base, PolicySetup::NoPref);
    EXPECT_FALSE(c.prefetch_enabled);

    c = applyPolicy(base, PolicySetup::DemandFirst);
    EXPECT_TRUE(c.prefetch_enabled);
    EXPECT_EQ(c.sched.kind, SchedPolicyKind::DemandFirst);
    EXPECT_FALSE(c.sched.apd_enabled);

    c = applyPolicy(base, PolicySetup::DemandPrefEqual);
    EXPECT_EQ(c.sched.kind, SchedPolicyKind::FrFcfs);

    c = applyPolicy(base, PolicySetup::PrefetchFirst);
    EXPECT_EQ(c.sched.kind, SchedPolicyKind::PrefetchFirst);

    c = applyPolicy(base, PolicySetup::ApsOnly);
    EXPECT_EQ(c.sched.kind, SchedPolicyKind::Aps);
    EXPECT_FALSE(c.sched.apd_enabled);
    EXPECT_TRUE(c.sched.urgency_enabled);

    c = applyPolicy(base, PolicySetup::Padc);
    EXPECT_EQ(c.sched.kind, SchedPolicyKind::Aps);
    EXPECT_TRUE(c.sched.apd_enabled);
    EXPECT_FALSE(c.sched.ranking_enabled);

    c = applyPolicy(base, PolicySetup::PadcRank);
    EXPECT_TRUE(c.sched.apd_enabled);
    EXPECT_TRUE(c.sched.ranking_enabled);

    c = applyPolicy(base, PolicySetup::ApsNoUrgent);
    EXPECT_FALSE(c.sched.urgency_enabled);
    EXPECT_FALSE(c.sched.apd_enabled);

    c = applyPolicy(base, PolicySetup::PadcNoUrgent);
    EXPECT_FALSE(c.sched.urgency_enabled);
    EXPECT_TRUE(c.sched.apd_enabled);

    c = applyPolicy(base, PolicySetup::ApdOnly);
    EXPECT_EQ(c.sched.kind, SchedPolicyKind::DemandFirst);
    EXPECT_TRUE(c.sched.apd_enabled);
}

TEST(ApplyPolicyTest, LabelsDistinct)
{
    std::set<std::string> labels;
    for (PolicySetup setup :
         {PolicySetup::NoPref, PolicySetup::DemandFirst,
          PolicySetup::DemandPrefEqual, PolicySetup::PrefetchFirst,
          PolicySetup::ApsOnly, PolicySetup::Padc, PolicySetup::PadcRank,
          PolicySetup::ApsNoUrgent, PolicySetup::PadcNoUrgent,
          PolicySetup::ApdOnly}) {
        EXPECT_TRUE(labels.insert(policyLabel(setup)).second);
    }
}

TEST(BaselineConfigTest, PaperTableFourSizes)
{
    EXPECT_EQ(SystemConfig::baseline(1).sched.request_buffer_size, 64u);
    EXPECT_EQ(SystemConfig::baseline(2).sched.request_buffer_size, 64u);
    EXPECT_EQ(SystemConfig::baseline(4).sched.request_buffer_size, 128u);
    EXPECT_EQ(SystemConfig::baseline(8).sched.request_buffer_size, 256u);
    EXPECT_EQ(SystemConfig::baseline(1).l2.size_bytes, 1024u * 1024);
    EXPECT_EQ(SystemConfig::baseline(4).l2.size_bytes, 512u * 1024);
}

TEST(RunMixTest, SmokeRunProducesMetrics)
{
    const SystemConfig cfg =
        applyPolicy(SystemConfig::baseline(1), PolicySetup::Padc);
    RunOptions opt;
    opt.instructions = 20000;
    opt.warmup = 2000;
    const RunMetrics m = runMix(cfg, {"libquantum_06"}, opt);
    ASSERT_EQ(m.cores.size(), 1u);
    EXPECT_GT(m.cores[0].ipc, 0.0);
    EXPECT_GE(m.cores[0].instructions, 18000u);
    EXPECT_GT(m.totalTraffic(), 0u);
}

TEST(RunMixTest, DeterministicAcrossRuns)
{
    const SystemConfig cfg =
        applyPolicy(SystemConfig::baseline(2), PolicySetup::Padc);
    RunOptions opt;
    opt.instructions = 15000;
    opt.warmup = 1000;
    const workload::Mix mix = {"milc_06", "libquantum_06"};
    const RunMetrics a = runMix(cfg, mix, opt);
    const RunMetrics b = runMix(cfg, mix, opt);
    for (std::size_t i = 0; i < a.cores.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.cores[i].ipc, b.cores[i].ipc);
        EXPECT_EQ(a.cores[i].traffic_demand, b.cores[i].traffic_demand);
    }
}

TEST(AloneIpcCacheTest, MemoizesAndIsPositive)
{
    const SystemConfig base = SystemConfig::baseline(2);
    RunOptions opt;
    opt.instructions = 15000;
    opt.warmup = 1000;
    AloneIpcCache cache(base, opt);
    const double first = cache.ipcAlone("swim_00", 0, 0);
    EXPECT_GT(first, 0.0);
    const double second = cache.ipcAlone("swim_00", 0, 0);
    EXPECT_DOUBLE_EQ(first, second);
    // Different core placement yields a (generally) different value but
    // must still be positive.
    EXPECT_GT(cache.ipcAlone("swim_00", 1, 0), 0.0);
}

TEST(EvaluateMixTest, SpeedupsBelowAloneRun)
{
    const SystemConfig base = SystemConfig::baseline(2);
    RunOptions opt;
    opt.instructions = 15000;
    opt.warmup = 1000;
    AloneIpcCache cache(base, opt);
    const SystemConfig cfg = applyPolicy(base, PolicySetup::DemandFirst);
    const MixEvaluation eval =
        evaluateMix(cfg, {"swim_00", "milc_06"}, opt, cache);
    ASSERT_EQ(eval.summary.speedups.size(), 2u);
    for (double is : eval.summary.speedups) {
        EXPECT_GT(is, 0.0);
        // Sharing the memory system cannot speed a core up by much; a
        // small tolerance covers warmup-window noise.
        EXPECT_LT(is, 1.15);
    }
    EXPECT_GE(eval.summary.uf, 1.0);
}

} // namespace
} // namespace padc::sim
