/**
 * @file
 * End-to-end tests of the process-sharded sweep executor. The test
 * binary doubles as its own worker: the custom main() below dispatches
 * `--padc-worker` to ProcessPool::workerMain, so every test spawns real
 * subprocesses of /proc/self/exe and exercises the genuine fork/exec,
 * pipe, retry, quarantine, journal, and interrupt machinery.
 */

#include "sim/procpool.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include <unistd.h>

#include "sim/experiment.hh"
#include "sim/interrupt.hh"
#include "sim/journal.hh"
#include "sim/parallel.hh"

namespace padc::sim
{
namespace
{

/** Scoped environment variable: set on entry, unset on exit. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const std::string &value) : name_(name)
    {
        ::setenv(name, value.c_str(), 1);
    }

    ~ScopedEnv() { ::unsetenv(name_); }

    ScopedEnv(const ScopedEnv &) = delete;
    ScopedEnv &operator=(const ScopedEnv &) = delete;

  private:
    const char *name_;
};

std::vector<std::string>
workerArgv()
{
    return {"/proc/self/exe", "--padc-worker"};
}

ProcPoolConfig
quickConfig(unsigned workers = 2)
{
    ProcPoolConfig config;
    config.workers = workers;
    config.backoff_initial_ms = 1;
    config.backoff_max_ms = 2;
    return config;
}

/** Four cheap single-core points differing only in seed. */
std::vector<SweepPoint>
fourPoints()
{
    SweepPoint base;
    base.config = SystemConfig::baseline(1);
    base.mix = {"mcf_06"};
    base.options.instructions = 2000;
    base.options.warmup = 0;
    std::vector<SweepPoint> points;
    for (std::uint64_t seed = 0; seed < 4; ++seed) {
        points.push_back(base);
        points.back().options.mix_seed = seed;
    }
    return points;
}

void
expectSameCores(const RunMetrics &a, const RunMetrics &b)
{
    ASSERT_EQ(a.cores.size(), b.cores.size());
    for (std::size_t c = 0; c < a.cores.size(); ++c) {
        EXPECT_EQ(a.cores[c].ipc, b.cores[c].ipc);
        EXPECT_EQ(a.cores[c].mpki, b.cores[c].mpki);
        EXPECT_EQ(a.cores[c].spl, b.cores[c].spl);
        EXPECT_EQ(a.cores[c].acc, b.cores[c].acc);
        EXPECT_EQ(a.cores[c].cov, b.cores[c].cov);
        EXPECT_EQ(a.cores[c].rbh, b.cores[c].rbh);
        EXPECT_EQ(a.cores[c].rbhu, b.cores[c].rbhu);
        EXPECT_EQ(a.cores[c].traffic_demand, b.cores[c].traffic_demand);
        EXPECT_EQ(a.cores[c].traffic_pref_useful,
                  b.cores[c].traffic_pref_useful);
        EXPECT_EQ(a.cores[c].traffic_pref_useless,
                  b.cores[c].traffic_pref_useless);
        EXPECT_EQ(a.cores[c].traffic_writeback,
                  b.cores[c].traffic_writeback);
        EXPECT_EQ(a.cores[c].instructions, b.cores[c].instructions);
        EXPECT_EQ(a.cores[c].cycles, b.cores[c].cycles);
    }
}

void
expectBitIdentical(const std::vector<Result<RunMetrics>> &pooled,
                   const std::vector<Result<RunMetrics>> &reference)
{
    ASSERT_EQ(pooled.size(), reference.size());
    for (std::size_t i = 0; i < pooled.size(); ++i) {
        EXPECT_EQ(pooled[i].outcome.status, reference[i].outcome.status);
        EXPECT_EQ(pooled[i].outcome.detail, reference[i].outcome.detail);
        expectSameCores(pooled[i].value, reference[i].value);
    }
}

TEST(ProcPool, RunSweepMatchesInThreadBitIdentically)
{
    const auto points = fourPoints();
    ParallelExperimentRunner runner(2);
    const auto reference = runSweep(points, runner);

    ProcessPool pool(workerArgv(), quickConfig());
    ASSERT_TRUE(pool.available());
    const auto pooled = pool.runSweep(points);
    expectBitIdentical(pooled, reference);
    EXPECT_EQ(pool.stats().executed, points.size());
    EXPECT_EQ(pool.stats().retries, 0u);
    for (const auto &result : pooled)
        EXPECT_EQ(result.outcome.attempts, 1u);
}

TEST(ProcPool, EvaluateSweepMatchesInThreadBitIdentically)
{
    const auto points = fourPoints();
    ParallelExperimentRunner runner(2);
    AloneIpcCache alone_ref(points[0].config, points[0].options);
    const auto reference = evaluateSweep(points, alone_ref, runner);

    ProcessPool pool(workerArgv(), quickConfig());
    AloneIpcCache alone(points[0].config, points[0].options);
    const auto pooled = pool.evaluateSweep(points, alone);
    ASSERT_EQ(pooled.size(), reference.size());
    for (std::size_t i = 0; i < pooled.size(); ++i) {
        EXPECT_EQ(pooled[i].outcome.status, reference[i].outcome.status);
        EXPECT_EQ(pooled[i].value.summary.ws,
                  reference[i].value.summary.ws);
        EXPECT_EQ(pooled[i].value.summary.hs,
                  reference[i].value.summary.hs);
        EXPECT_EQ(pooled[i].value.summary.uf,
                  reference[i].value.summary.uf);
        EXPECT_EQ(pooled[i].value.summary.speedups,
                  reference[i].value.summary.speedups);
        expectSameCores(pooled[i].value.metrics,
                        reference[i].value.metrics);
    }
}

TEST(ProcPool, CrashFaultsRetryAndStayBitIdentical)
{
    const auto points = fourPoints();
    ParallelExperimentRunner runner(2);
    const auto reference = runSweep(points, runner);

    // crash:2 kills the worker on indices 1 and 3, first attempt only.
    ScopedEnv fault("PADC_FAULT_INJECT", "crash:2");
    ProcessPool pool(workerArgv(), quickConfig());
    const auto pooled = pool.runSweep(points);
    expectBitIdentical(pooled, reference);
    EXPECT_EQ(pool.stats().retries, 2u);
    EXPECT_EQ(pooled[0].outcome.attempts, 1u);
    EXPECT_EQ(pooled[1].outcome.attempts, 2u);
    EXPECT_EQ(pooled[3].outcome.attempts, 2u);
    EXPECT_NE(pooled[1].outcome.last_error.find("signal 9"),
              std::string::npos)
        << pooled[1].outcome.last_error;
}

TEST(ProcPool, ExitFaultsCarryTheExitStatusDiagnostic)
{
    const auto points = fourPoints();
    ParallelExperimentRunner runner(2);
    const auto reference = runSweep(points, runner);

    ScopedEnv fault("PADC_FAULT_INJECT", "exit:7:3");
    ProcessPool pool(workerArgv(), quickConfig());
    const auto pooled = pool.runSweep(points);
    expectBitIdentical(pooled, reference);
    EXPECT_EQ(pooled[2].outcome.attempts, 2u);
    EXPECT_NE(pooled[2].outcome.last_error.find("exited with status 7"),
              std::string::npos)
        << pooled[2].outcome.last_error;
}

TEST(ProcPool, PoisonPointIsQuarantinedOthersSurvive)
{
    const auto points = fourPoints();
    const std::string journal_path =
        ::testing::TempDir() + "padc_procpool_poison." +
        std::to_string(::getpid()) + ".padcjournal";
    std::remove(journal_path.c_str());

    ScopedEnv fault("PADC_FAULT_INJECT", "poison:1");
    ProcessPool pool(workerArgv(), quickConfig());
    SweepJournal journal(journal_path);
    const auto pooled = pool.runSweep(points, &journal);

    ASSERT_EQ(pooled.size(), 4u);
    EXPECT_EQ(pooled[1].outcome.status, PointStatus::Failed);
    EXPECT_NE(pooled[1].outcome.detail.find("quarantined after 3 "
                                            "attempts"),
              std::string::npos)
        << pooled[1].outcome.detail;
    EXPECT_NE(pooled[1].outcome.detail.find("signal 9"),
              std::string::npos)
        << pooled[1].outcome.detail;
    EXPECT_EQ(pooled[1].outcome.attempts, 3u);
    EXPECT_EQ(pool.stats().quarantined, 1u);
    for (const std::size_t i : {0u, 2u, 3u})
        EXPECT_EQ(pooled[i].outcome.status, PointStatus::Ok) << i;

    // Quarantined points are never journaled: a resume retries them.
    Result<RunMetrics> stored;
    EXPECT_FALSE(journal.lookup(sweepPointKey(points[1]), &stored));
    EXPECT_TRUE(journal.lookup(sweepPointKey(points[0]), &stored));
    std::remove(journal_path.c_str());
}

TEST(ProcPool, HungWorkerTimesOutAndThePointRetries)
{
    const auto points = fourPoints();
    ParallelExperimentRunner runner(2);
    const auto reference = runSweep(points, runner);

    ScopedEnv fault("PADC_FAULT_INJECT", "hang:3");
    ProcPoolConfig config = quickConfig();
    config.heartbeat_timeout_ms = 300;
    ProcessPool pool(workerArgv(), config);
    const auto pooled = pool.runSweep(points);
    expectBitIdentical(pooled, reference);
    EXPECT_EQ(pooled[2].outcome.attempts, 2u);
    EXPECT_NE(pooled[2].outcome.last_error.find("timed out"),
              std::string::npos)
        << pooled[2].outcome.last_error;
}

TEST(ProcPool, JournaledPointsReplayWithoutWorkers)
{
    const auto points = fourPoints();
    const std::string journal_path =
        ::testing::TempDir() + "padc_procpool_journal." +
        std::to_string(::getpid()) + ".padcjournal";
    std::remove(journal_path.c_str());

    std::vector<Result<RunMetrics>> first;
    {
        ProcessPool pool(workerArgv(), quickConfig());
        SweepJournal journal(journal_path);
        first = pool.runSweep(points, &journal);
        EXPECT_EQ(pool.stats().executed, 4u);
    }
    {
        ProcessPool pool(workerArgv(), quickConfig());
        SweepJournal journal(journal_path);
        EXPECT_EQ(journal.loadedEntries(), 4u);
        const auto replayed = pool.runSweep(points, &journal);
        expectBitIdentical(replayed, first);
        EXPECT_EQ(pool.stats().executed, 0u);
        EXPECT_EQ(pool.stats().replayed, 4u);
        for (const auto &result : replayed)
            EXPECT_EQ(result.outcome.attempts, 0u);
    }
    std::remove(journal_path.c_str());
}

TEST(ProcPool, UnspawnableWorkersDegradeToInThreadExecution)
{
    const auto points = fourPoints();
    ParallelExperimentRunner runner(2);
    const auto reference = runSweep(points, runner);

    ProcessPool pool({"/nonexistent/padc-worker-binary", "worker"},
                     quickConfig());
    EXPECT_FALSE(pool.available());
    const auto pooled = pool.runSweep(points);
    expectBitIdentical(pooled, reference);
}

TEST(ProcPool, InterruptDrainsPendingPointsAsInterrupted)
{
    const auto points = fourPoints();
    ScopedEnv hook("PADC_TEST_INTERRUPT_AFTER", "1");
    resetInterruptState();

    // One worker serializes the dispatches, so the post-interrupt
    // outcome split is deterministic: 1 completed, 3 drained.
    ProcessPool pool(workerArgv(), quickConfig(1));
    const auto pooled = pool.runSweep(points);
    EXPECT_TRUE(pool.stats().interrupted);

    std::size_t ok = 0;
    std::size_t interrupted = 0;
    for (const auto &result : pooled) {
        if (result.outcome.status == PointStatus::Ok) {
            ++ok;
        } else {
            EXPECT_EQ(result.outcome.detail, kInterruptedDetail);
            EXPECT_EQ(result.outcome.attempts, 0u);
            ++interrupted;
        }
    }
    EXPECT_EQ(ok, 1u);
    EXPECT_EQ(interrupted, 3u);

    ::unsetenv("PADC_TEST_INTERRUPT_AFTER");
    resetInterruptState(); // do not leak the stop into later tests
}

} // namespace
} // namespace padc::sim

int
main(int argc, char **argv)
{
    // The worker half of the tests: the supervisor under test spawns
    // this very binary with --padc-worker and the pipe fds staged.
    if (argc >= 2 && std::strcmp(argv[1], "--padc-worker") == 0) {
        return padc::sim::ProcessPool::workerMain(
            padc::sim::kWorkerTaskFd, padc::sim::kWorkerResultFd);
    }
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
