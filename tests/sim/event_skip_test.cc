/**
 * @file
 * A/B equivalence of the event-driven main loop (DESIGN.md section 11):
 * the same seeded mix run with event skipping on and off must be
 * bit-identical -- every exported statistic, every interval time-series
 * row, every request-lifecycle trace event, and the RunStatus. This is
 * the contract that makes SystemConfig::event_skip an execution detail
 * rather than a simulated parameter.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <vector>

#include "sim/experiment.hh"
#include "sim/system.hh"
#include "telemetry/profiler.hh"
#include "telemetry/telemetry.hh"
#include "workload/generator.hh"
#include "workload/mixes.hh"

namespace padc::sim
{
namespace
{

/** Everything one run can externally show, captured for comparison. */
struct RunArtifacts
{
    StatSet stats;
    RunStatus status;
    std::vector<telemetry::IntervalRow> rows;
    std::uint64_t rows_pushed = 0;
    std::vector<telemetry::TraceEvent> events;
    std::uint64_t events_seen = 0;
};

/** Run @p mix under @p cfg with full telemetry and capture the output. */
RunArtifacts
runOnce(SystemConfig cfg, const workload::Mix &mix, bool event_skip,
        std::uint64_t instructions, std::uint64_t warmup)
{
    telemetry::TelemetryConfig tcfg;
    tcfg.timeseries = true;
    tcfg.trace = true;
    telemetry::Collector collector(tcfg);
    cfg.collector = &collector;
    cfg.event_skip = event_skip;

    std::vector<std::unique_ptr<workload::SyntheticTrace>> traces;
    std::vector<core::TraceSource *> sources;
    for (std::uint32_t c = 0; c < cfg.num_cores; ++c) {
        traces.push_back(std::make_unique<workload::SyntheticTrace>(
            workload::traceParamsFor(mix, c, 0)));
        sources.push_back(traces.back().get());
    }

    System system(cfg, std::move(sources));
    RunArtifacts out;
    out.status = system.run(instructions, 30000000, warmup);
    out.stats = system.exportStats();
    out.rows = collector.sampler()->rows();
    out.rows_pushed = collector.sampler()->pushed();
    out.events = collector.trace()->events();
    out.events_seen = collector.trace()->seen();
    return out;
}

/** Field-by-field row comparison (no memcmp: structs have padding). */
void
expectSameRows(const std::vector<telemetry::IntervalRow> &a,
               const std::vector<telemetry::IntervalRow> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        SCOPED_TRACE("interval row " + std::to_string(i));
        EXPECT_EQ(a[i].cycle, b[i].cycle);
        EXPECT_EQ(a[i].core, b[i].core);
        EXPECT_EQ(a[i].par, b[i].par);
        EXPECT_EQ(a[i].psc, b[i].psc);
        EXPECT_EQ(a[i].puc, b[i].puc);
        EXPECT_EQ(a[i].drop_threshold, b[i].drop_threshold);
        EXPECT_EQ(a[i].sent, b[i].sent);
        EXPECT_EQ(a[i].used, b[i].used);
        EXPECT_EQ(a[i].dropped, b[i].dropped);
        EXPECT_EQ(a[i].bus_util, b[i].bus_util);
        EXPECT_EQ(a[i].row_hit_rate, b[i].row_hit_rate);
        EXPECT_EQ(a[i].read_queue, b[i].read_queue);
        EXPECT_EQ(a[i].write_queue, b[i].write_queue);
    }
}

void
expectSameEvents(const std::vector<telemetry::TraceEvent> &a,
                 const std::vector<telemetry::TraceEvent> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        SCOPED_TRACE("trace event " + std::to_string(i));
        EXPECT_EQ(a[i].cycle, b[i].cycle);
        EXPECT_EQ(a[i].addr, b[i].addr);
        EXPECT_EQ(a[i].aux, b[i].aux);
        EXPECT_EQ(a[i].row, b[i].row);
        EXPECT_EQ(a[i].kind, b[i].kind);
        EXPECT_EQ(a[i].core, b[i].core);
        EXPECT_EQ(a[i].channel, b[i].channel);
        EXPECT_EQ(a[i].flags, b[i].flags);
        EXPECT_EQ(a[i].bank, b[i].bank);
    }
}

/** Run skip-on vs. skip-off and assert every artifact is identical. */
void
expectEquivalent(const SystemConfig &cfg, const workload::Mix &mix,
                 std::uint64_t instructions = 8000,
                 std::uint64_t warmup = 1000)
{
    const RunArtifacts on = runOnce(cfg, mix, true, instructions, warmup);
    const RunArtifacts off =
        runOnce(cfg, mix, false, instructions, warmup);

    EXPECT_EQ(on.status.truncated_mask, off.status.truncated_mask);
    EXPECT_EQ(on.status.cores_completed, off.status.cores_completed);
    EXPECT_EQ(on.status.cores_truncated, off.status.cores_truncated);
    EXPECT_EQ(on.status.cycles, off.status.cycles);

    const auto &ea = on.stats.entries();
    const auto &eb = off.stats.entries();
    ASSERT_EQ(ea.size(), eb.size());
    for (std::size_t i = 0; i < ea.size(); ++i) {
        EXPECT_EQ(ea[i].first, eb[i].first) << "stat name " << i;
        EXPECT_EQ(ea[i].second, eb[i].second) << "stat " << ea[i].first;
    }

    EXPECT_EQ(on.rows_pushed, off.rows_pushed);
    expectSameRows(on.rows, off.rows);
    EXPECT_EQ(on.events_seen, off.events_seen);
    expectSameEvents(on.events, off.events);
}

SystemConfig
padcConfig(std::uint32_t cores)
{
    SystemConfig cfg = applyPolicy(SystemConfig::baseline(cores),
                                   PolicySetup::Padc);
    return cfg;
}

TEST(EventSkipTest, PadcTwoCoreApdOn)
{
    // The full mechanism stack: APS + APD on a mixed 2-core load with
    // an idle-heavy and a saturated application sharing the channel.
    expectEquivalent(padcConfig(2), {"mcf_06", "libquantum_06"});
}

TEST(EventSkipTest, DemandFirstRunahead)
{
    // Rigid scheduler (no shard wake maintenance -> conservative
    // degradation) plus the runahead core model's extra event sources.
    SystemConfig cfg = applyPolicy(SystemConfig::baseline(1),
                                   PolicySetup::DemandFirst);
    cfg.core.runahead = true;
    expectEquivalent(cfg, {"mcf_06"});
}

TEST(EventSkipTest, ClosedRowWithRefresh)
{
    // Refresh deadlines and closed-row precharges are event sources of
    // their own; tREFI is shortened so a short run sees many refreshes.
    SystemConfig cfg = padcConfig(1);
    cfg.sched.row_policy = RowPolicy::Closed;
    cfg.dram.timing.refresh_enabled = true;
    cfg.dram.timing.tREFI = 520;
    expectEquivalent(cfg, {"libquantum_06"});
}

TEST(EventSkipTest, JumpsActuallyTaken)
{
    // Guard against the suite passing vacuously: on an idle-heavy
    // single-core mix the event loop must really take jumps.
    auto &profiler = telemetry::WallProfiler::instance();
    profiler.reset();
    runOnce(padcConfig(1), {"mcf_06"}, true, 8000, 0);
    const auto snap = profiler.snapshot();
    EXPECT_GT(snap.event_jumps, 0u);
    EXPECT_GT(snap.skipped_cycles, 0u);
    EXPECT_GE(snap.skipped_cycles, snap.event_jumps);
}

TEST(EventSkipTest, EnvEscapeHatchDisablesSkipping)
{
    // PADC_NO_EVENT_SKIP=1 forces the legacy loop even when the config
    // asks for skipping; 0 leaves skipping enabled.
    auto &profiler = telemetry::WallProfiler::instance();

    ::setenv("PADC_NO_EVENT_SKIP", "1", 1);
    profiler.reset();
    runOnce(padcConfig(1), {"mcf_06"}, true, 4000, 0);
    EXPECT_EQ(profiler.snapshot().event_jumps, 0u);

    ::setenv("PADC_NO_EVENT_SKIP", "0", 1);
    profiler.reset();
    runOnce(padcConfig(1), {"mcf_06"}, true, 4000, 0);
    EXPECT_GT(profiler.snapshot().event_jumps, 0u);

    ::unsetenv("PADC_NO_EVENT_SKIP");
}

} // namespace
} // namespace padc::sim
