/**
 * @file
 * Unit tests for the benchmark profile registry.
 */

#include <gtest/gtest.h>

#include <set>

#include "workload/profile.hh"

namespace padc::workload
{
namespace
{

TEST(ProfileTest, RegistryNonEmptyAndUnique)
{
    const auto &profiles = allProfiles();
    EXPECT_GE(profiles.size(), 30u);
    std::set<std::string> names;
    std::set<std::uint64_t> seeds;
    for (const auto &p : profiles) {
        EXPECT_TRUE(names.insert(p.name).second)
            << "duplicate name " << p.name;
        EXPECT_TRUE(seeds.insert(p.params.seed).second)
            << "duplicate seed for " << p.name;
    }
}

TEST(ProfileTest, AllThreeClassesPresent)
{
    EXPECT_GE(profileNamesInClass(0).size(), 5u);
    EXPECT_GE(profileNamesInClass(1).size(), 10u);
    EXPECT_GE(profileNamesInClass(2).size(), 4u);
}

TEST(ProfileTest, FindByName)
{
    const BenchmarkProfile *p = findProfile("libquantum_06");
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->cls, 1);
    EXPECT_EQ(findProfile("not_a_benchmark"), nullptr);
}

TEST(ProfileTest, PaperCaseStudyBenchmarksExist)
{
    for (const char *name :
         {"swim_00", "bwaves_06", "leslie3d_06", "soplex_06", "art_00",
          "galgel_00", "ammp_00", "milc_06", "omnetpp_06",
          "libquantum_06", "GemsFDTD_06"}) {
        EXPECT_NE(findProfile(name), nullptr) << name;
    }
}

TEST(ProfileTest, ParametersSane)
{
    for (const auto &p : allProfiles()) {
        EXPECT_GT(p.params.working_set_bytes, 0u) << p.name;
        EXPECT_GE(p.params.accesses_per_line, 1u) << p.name;
        EXPECT_GE(p.params.num_phases, 1u) << p.name;
        EXPECT_LE(p.params.num_phases, 2u) << p.name;
        EXPECT_GE(p.params.store_fraction, 0.0) << p.name;
        EXPECT_LE(p.params.store_fraction, 1.0) << p.name;
        for (std::uint32_t i = 0; i < p.params.num_phases; ++i) {
            const auto &ph = p.params.phases[i];
            EXPECT_GE(ph.seq_fraction, 0.0) << p.name;
            EXPECT_LE(ph.seq_fraction + ph.stride_fraction, 1.0) << p.name;
            EXPECT_GE(ph.concurrent_runs, 1u) << p.name;
        }
    }
}

TEST(ProfileTest, ClassZeroFitsInL2)
{
    // Prefetch-insensitive profiles must have working sets below the
    // single-core 1MB L2 so they stop missing after warm-up.
    for (const auto &name : profileNamesInClass(0)) {
        const BenchmarkProfile *p = findProfile(name);
        ASSERT_NE(p, nullptr);
        EXPECT_LT(p->params.working_set_bytes, 512u * 1024) << name;
    }
}

TEST(ProfileTest, UnfriendlyProfilesHaveShortRuns)
{
    // Class-2 profiles rely on short runs/bursts for low accuracy.
    for (const auto &name : profileNamesInClass(2)) {
        const BenchmarkProfile *p = findProfile(name);
        ASSERT_NE(p, nullptr);
        const auto &last_phase =
            p->params.phases[p->params.num_phases - 1];
        EXPECT_LE(last_phase.seq_run_lines, 96u) << name;
    }
}

TEST(ProfileTest, NameListMatchesRegistry)
{
    EXPECT_EQ(allProfileNames().size(), allProfiles().size());
}

} // namespace
} // namespace padc::workload
