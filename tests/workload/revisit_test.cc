/**
 * @file
 * Tests for the pointer-chasing revisit component of the synthetic
 * generator: recurring burst locations give the miss stream temporal
 * correlation (the food of Markov prefetchers) without adding
 * stream-prefetchable structure.
 */

#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>

#include "workload/generator.hh"
#include "workload/profile.hh"

namespace padc::workload
{
namespace
{

TraceParams
revisitParams(double fraction)
{
    TraceParams p;
    p.seed = 5;
    p.avg_gap = 4;
    p.working_set_bytes = 8 << 20;
    p.accesses_per_line = 1;
    p.phases[0].seq_fraction = 0.0;
    p.phases[0].burst_lines = 4;
    p.phases[0].concurrent_runs = 1;
    p.phases[0].revisit_fraction = fraction;
    return p;
}

/** Count how often a (line -> next line) pair repeats in the stream. */
double
successorRepeatRate(SyntheticTrace &trace, int ops)
{
    std::unordered_map<Addr, Addr> successor;
    std::uint64_t repeats = 0;
    std::uint64_t checks = 0;
    Addr prev = lineAlign(trace.next().addr);
    for (int i = 1; i < ops; ++i) {
        const Addr cur = lineAlign(trace.next().addr);
        auto it = successor.find(prev);
        if (it != successor.end()) {
            ++checks;
            repeats += it->second == cur ? 1 : 0;
        }
        successor[prev] = cur;
        prev = cur;
    }
    return checks == 0 ? 0.0
                       : static_cast<double>(repeats) /
                             static_cast<double>(checks);
}

TEST(RevisitTest, RevisitFractionCreatesTemporalCorrelation)
{
    SyntheticTrace with(revisitParams(0.5));
    SyntheticTrace without(revisitParams(0.0));
    const double corr_with = successorRepeatRate(with, 60000);
    const double corr_without = successorRepeatRate(without, 60000);
    EXPECT_GT(corr_with, corr_without + 0.1);
}

TEST(RevisitTest, ZeroFractionStaysRandom)
{
    // Without revisits, repeated burst starts are only birthday-bound
    // chance collisions; with revisits they are the common case.
    auto duplicate_starts = [](double fraction) {
        SyntheticTrace trace(revisitParams(fraction));
        std::unordered_set<Addr> starts;
        std::uint64_t dupes = 0;
        Addr prev = lineAlign(trace.next().addr);
        for (int i = 1; i < 30000; ++i) {
            const Addr cur = lineAlign(trace.next().addr);
            if (lineIndex(cur) != lineIndex(prev) + 1)
                dupes += starts.insert(cur).second ? 0 : 1;
            prev = cur;
        }
        return dupes;
    };
    const std::uint64_t without = duplicate_starts(0.0);
    const std::uint64_t with = duplicate_starts(0.5);
    EXPECT_GT(with, without * 5);
}

TEST(RevisitTest, UnfriendlyProfilesHaveRevisits)
{
    for (const char *name : {"art_00", "omnetpp_06", "xalancbmk_06"}) {
        const BenchmarkProfile *p = findProfile(name);
        ASSERT_NE(p, nullptr);
        EXPECT_GT(p->params.phases[0].revisit_fraction, 0.0) << name;
    }
}

TEST(RevisitTest, StreamingProfilesHaveNone)
{
    for (const char *name : {"libquantum_06", "swim_00", "bwaves_06"}) {
        const BenchmarkProfile *p = findProfile(name);
        ASSERT_NE(p, nullptr);
        EXPECT_DOUBLE_EQ(p->params.phases[0].revisit_fraction, 0.0)
            << name;
    }
}

} // namespace
} // namespace padc::workload
