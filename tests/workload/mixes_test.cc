/**
 * @file
 * Unit tests for multiprogrammed workload mix construction.
 */

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "workload/generator.hh"
#include "workload/mixes.hh"

namespace padc::workload
{
namespace
{

TEST(MixesTest, RandomMixesDeterministic)
{
    const auto a = randomMixes(10, 4, 42);
    const auto b = randomMixes(10, 4, 42);
    ASSERT_EQ(a.size(), 10u);
    EXPECT_EQ(a, b);
    const auto c = randomMixes(10, 4, 43);
    EXPECT_NE(a, c);
}

TEST(MixesTest, MixShapeMatchesRequest)
{
    for (std::uint32_t cores : {1u, 2u, 4u, 8u}) {
        const auto mixes = randomMixes(5, cores, 7);
        ASSERT_EQ(mixes.size(), 5u);
        for (const auto &mix : mixes) {
            ASSERT_EQ(mix.size(), cores);
            for (const auto &name : mix)
                EXPECT_NE(findProfile(name), nullptr) << name;
        }
    }
}

TEST(MixesTest, CaseStudiesMatchPaper)
{
    const Mix friendly = caseStudyFriendly();
    ASSERT_EQ(friendly.size(), 4u);
    EXPECT_EQ(friendly[0], "swim_00");
    for (const auto &name : friendly)
        EXPECT_EQ(findProfile(name)->cls, 1) << name;

    const Mix unfriendly = caseStudyUnfriendly();
    for (const auto &name : unfriendly)
        EXPECT_EQ(findProfile(name)->cls, 2) << name;

    const Mix mixed = caseStudyMixed();
    EXPECT_EQ(findProfile(mixed[0])->cls, 2); // omnetpp
    EXPECT_EQ(findProfile(mixed[1])->cls, 1); // libquantum
    EXPECT_EQ(findProfile(mixed[2])->cls, 2); // galgel
    EXPECT_EQ(findProfile(mixed[3])->cls, 1); // GemsFDTD
}

TEST(MixesTest, TraceParamsDisjointBases)
{
    const Mix mix = caseStudyFriendly();
    std::set<Addr> bases;
    for (std::uint32_t c = 0; c < 4; ++c) {
        const TraceParams p = traceParamsFor(mix, c, 0);
        EXPECT_TRUE(bases.insert(p.base).second);
        // Bases far enough apart that working sets cannot overlap.
        EXPECT_GE(p.base, static_cast<Addr>(c) << 40);
    }
}

TEST(MixesTest, IdenticalProfilesGetDistinctSeeds)
{
    const Mix mix = {"milc_06", "milc_06", "milc_06", "milc_06"};
    std::set<std::uint64_t> seeds;
    for (std::uint32_t c = 0; c < 4; ++c)
        seeds.insert(traceParamsFor(mix, c, 5).seed);
    EXPECT_EQ(seeds.size(), 4u);
}

TEST(MixesTest, MixSeedSaltsTraceSeeds)
{
    const Mix mix = caseStudyMixed();
    const TraceParams a = traceParamsFor(mix, 0, 1);
    const TraceParams b = traceParamsFor(mix, 0, 2);
    EXPECT_NE(a.seed, b.seed);
    EXPECT_EQ(a.base, b.base);
}

TEST(MixesTest, ParamsOtherwiseMatchProfile)
{
    const Mix mix = caseStudyFriendly();
    const TraceParams p = traceParamsFor(mix, 0, 0);
    const BenchmarkProfile *profile = findProfile(mix[0]);
    ASSERT_NE(profile, nullptr);
    EXPECT_EQ(p.avg_gap, profile->params.avg_gap);
    EXPECT_EQ(p.working_set_bytes, profile->params.working_set_bytes);
    EXPECT_DOUBLE_EQ(p.store_fraction, profile->params.store_fraction);
}

TEST(MixesTest, UnknownProfileThrowsWithSuggestion)
{
    const Mix mix = {"libquantm_06"};
    try {
        traceParamsFor(mix, 0, 0);
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("libquantm_06"), std::string::npos) << what;
        EXPECT_NE(what.find("did you mean 'libquantum_06'"),
                  std::string::npos)
            << what;
    }
}

TEST(MixesTest, OutOfRangeCoreThrows)
{
    const Mix mix = {"milc_06"};
    EXPECT_THROW(traceParamsFor(mix, 1, 0), std::invalid_argument);
    EXPECT_THROW(makeTraceSource(mix, 5, 0), std::invalid_argument);
}

TEST(MixesTest, ValidateMixAccumulatesAllErrors)
{
    const Mix mix = {"milc_06", "bogus_one", "bogus_two"};
    ConfigErrors errors;
    EXPECT_FALSE(validateMix(mix, &errors));
    const std::string text = errors.str();
    // Both bad slots reported in one pass, each with its field path;
    // the valid slot stays silent.
    EXPECT_NE(text.find("mix[1]"), std::string::npos) << text;
    EXPECT_NE(text.find("mix[2]"), std::string::npos) << text;
    EXPECT_EQ(text.find("mix[0]"), std::string::npos) << text;
}

TEST(MixesTest, ValidateMixAcceptsBuiltins)
{
    ConfigErrors errors;
    EXPECT_TRUE(validateMix(caseStudyFriendly(), &errors))
        << errors.str();
}

TEST(MixesTest, MakeTraceSourceSynthesizesForBuiltins)
{
    const Mix mix = {"milc_06"};
    auto source = makeTraceSource(mix, 0, 3);
    ASSERT_NE(source, nullptr);
    SyntheticTrace direct(traceParamsFor(mix, 0, 3));
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(source->next().addr, direct.next().addr) << i;
}

} // namespace
} // namespace padc::workload
