/**
 * @file
 * Unit and statistical tests for the synthetic trace generator.
 */

#include <gtest/gtest.h>

#include <map>

#include "workload/generator.hh"

namespace padc::workload
{
namespace
{

TraceParams
baseParams()
{
    TraceParams p;
    p.seed = 123;
    p.avg_gap = 10;
    p.store_fraction = 0.25;
    p.dependent_fraction = 0.4;
    p.working_set_bytes = 1 << 20;
    p.accesses_per_line = 2;
    p.phases[0].seq_fraction = 0.9;
    p.phases[0].seq_run_lines = 256;
    p.phases[0].burst_lines = 4;
    p.phases[0].concurrent_runs = 2;
    return p;
}

TEST(GeneratorTest, DeterministicForSameSeed)
{
    SyntheticTrace a(baseParams());
    SyntheticTrace b(baseParams());
    for (int i = 0; i < 5000; ++i) {
        const auto oa = a.next();
        const auto ob = b.next();
        ASSERT_EQ(oa.addr, ob.addr);
        ASSERT_EQ(oa.pc, ob.pc);
        ASSERT_EQ(oa.is_load, ob.is_load);
        ASSERT_EQ(oa.compute_gap, ob.compute_gap);
        ASSERT_EQ(oa.dependent, ob.dependent);
    }
}

TEST(GeneratorTest, ResetReproducesSequence)
{
    SyntheticTrace trace(baseParams());
    std::vector<Addr> first;
    for (int i = 0; i < 1000; ++i)
        first.push_back(trace.next().addr);
    trace.reset();
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(trace.next().addr, first[i]);
}

TEST(GeneratorTest, SeedChangesSequence)
{
    TraceParams p = baseParams();
    SyntheticTrace a(p);
    p.seed = 124;
    SyntheticTrace b(p);
    int same = 0;
    for (int i = 0; i < 200; ++i)
        same += a.next().addr == b.next().addr ? 1 : 0;
    EXPECT_LT(same, 20);
}

TEST(GeneratorTest, AddressesStayInWorkingSetPlusBase)
{
    TraceParams p = baseParams();
    p.base = 0x100000000ULL;
    SyntheticTrace trace(p);
    for (int i = 0; i < 20000; ++i) {
        const Addr addr = trace.next().addr;
        EXPECT_GE(addr, p.base);
        EXPECT_LT(addr, p.base + p.working_set_bytes + kLineBytes);
    }
}

TEST(GeneratorTest, ComputeGapAroundMean)
{
    TraceParams p = baseParams();
    p.avg_gap = 20;
    SyntheticTrace trace(p);
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const auto gap = trace.next().compute_gap;
        EXPECT_GE(gap, 10u);
        EXPECT_LE(gap, 30u);
        sum += gap;
    }
    EXPECT_NEAR(sum / n, 20.0, 0.5);
}

TEST(GeneratorTest, ZeroGapSupported)
{
    TraceParams p = baseParams();
    p.avg_gap = 0;
    SyntheticTrace trace(p);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(trace.next().compute_gap, 0u);
}

TEST(GeneratorTest, StoreFractionApproximatelyHonored)
{
    TraceParams p = baseParams();
    p.store_fraction = 0.3;
    SyntheticTrace trace(p);
    int stores = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        stores += trace.next().is_load ? 0 : 1;
    EXPECT_NEAR(static_cast<double>(stores) / n, 0.3, 0.02);
}

TEST(GeneratorTest, DependentFractionApproximatelyHonored)
{
    TraceParams p = baseParams();
    p.dependent_fraction = 0.6;
    SyntheticTrace trace(p);
    int dep = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        dep += trace.next().dependent ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(dep) / n, 0.6, 0.02);
}

TEST(GeneratorTest, SequentialLineShareMatchesConfig)
{
    // With line-share semantics, ~90% of consecutive-line steps should
    // be +1 steps even though random bursts are more numerous as runs.
    TraceParams p = baseParams();
    p.accesses_per_line = 1;
    p.phases[0].seq_fraction = 0.9;
    p.phases[0].concurrent_runs = 1;
    SyntheticTrace trace(p);
    Addr prev = trace.next().addr;
    int steps = 0;
    int unit_steps = 0;
    for (int i = 0; i < 30000; ++i) {
        const Addr cur = trace.next().addr;
        ++steps;
        unit_steps += lineIndex(cur) == lineIndex(prev) + 1 ? 1 : 0;
        prev = cur;
    }
    // Random bursts are internally sequential too, so the +1-step
    // fraction is 1 minus the run-boundary rate:
    //   jumps/op = seq_share/seq_len + rand_share/burst_len.
    const double measured =
        static_cast<double>(unit_steps) / static_cast<double>(steps);
    const double expected = 1.0 - (0.9 / 256.0 + 0.1 / 3.2);
    EXPECT_NEAR(measured, expected, 0.02);

    // Contrast: halving the sequential share visibly lowers it.
    TraceParams q = p;
    q.phases[0].seq_fraction = 0.5;
    SyntheticTrace trace_q(q);
    Addr prev_q = trace_q.next().addr;
    int unit_q = 0;
    for (int i = 0; i < 30000; ++i) {
        const Addr cur = trace_q.next().addr;
        unit_q += lineIndex(cur) == lineIndex(prev_q) + 1 ? 1 : 0;
        prev_q = cur;
    }
    EXPECT_LT(unit_q / 30000.0, measured - 0.05);
}

TEST(GeneratorTest, AccessesPerLineRepeatsLines)
{
    TraceParams p = baseParams();
    p.accesses_per_line = 3;
    p.phases[0].concurrent_runs = 1;
    p.phases[0].seq_fraction = 1.0;
    SyntheticTrace trace(p);
    std::map<Addr, int> counts;
    for (int i = 0; i < 3000; ++i)
        ++counts[lineAlign(trace.next().addr)];
    int triples = 0;
    for (const auto &[line, count] : counts)
        triples += count == 3 ? 1 : 0;
    // The overwhelming majority of lines are visited exactly 3 times.
    EXPECT_GT(triples, static_cast<int>(counts.size() * 9 / 10));
}

TEST(GeneratorTest, PhaseSwitchingChangesBehaviour)
{
    TraceParams p = baseParams();
    p.num_phases = 2;
    p.accesses_per_line = 1;
    p.phases[0].seq_fraction = 1.0;
    p.phases[0].seq_run_lines = 4096;
    p.phases[0].concurrent_runs = 1;
    p.phases[0].ops = 2000;
    p.phases[1] = p.phases[0];
    p.phases[1].seq_fraction = 0.0;
    p.phases[1].burst_lines = 2;
    p.phases[1].ops = 2000;
    SyntheticTrace trace(p);

    auto unit_step_fraction = [&](int ops) {
        Addr prev = trace.next().addr;
        int unit = 0;
        for (int i = 1; i < ops; ++i) {
            const Addr cur = trace.next().addr;
            unit += lineIndex(cur) == lineIndex(prev) + 1 ? 1 : 0;
            prev = cur;
        }
        return static_cast<double>(unit) / ops;
    };

    const double phase0 = unit_step_fraction(1990);
    const double phase1 = unit_step_fraction(1990);
    EXPECT_GT(phase0, 0.95);
    EXPECT_LT(phase1, 0.6);
}

TEST(GeneratorTest, ConcurrentRunsInterleave)
{
    TraceParams p = baseParams();
    p.accesses_per_line = 1;
    p.phases[0].seq_fraction = 1.0;
    p.phases[0].concurrent_runs = 4;
    SyntheticTrace trace(p);
    // With 4 interleaved streams, direct +1 line steps are rare but the
    // stride-4-apart subsequences are sequential.
    std::vector<Addr> addrs;
    for (int i = 0; i < 4000; ++i)
        addrs.push_back(trace.next().addr);
    int sub_unit = 0;
    int sub_total = 0;
    for (std::size_t i = 4; i < addrs.size(); ++i) {
        ++sub_total;
        sub_unit +=
            lineIndex(addrs[i]) == lineIndex(addrs[i - 4]) + 1 ? 1 : 0;
    }
    EXPECT_GT(static_cast<double>(sub_unit) / sub_total, 0.9);
}

TEST(GeneratorTest, StridedRunsFollowStride)
{
    TraceParams p = baseParams();
    p.accesses_per_line = 1;
    p.phases[0].seq_fraction = 0.0;
    p.phases[0].stride_fraction = 1.0;
    p.phases[0].stride_lines = 6;
    p.phases[0].concurrent_runs = 1;
    SyntheticTrace trace(p);
    Addr prev = trace.next().addr;
    int stride_steps = 0;
    int total = 0;
    for (int i = 0; i < 5000; ++i) {
        const Addr cur = trace.next().addr;
        ++total;
        stride_steps +=
            lineIndex(cur) == lineIndex(prev) + 6 ? 1 : 0;
        prev = cur;
    }
    EXPECT_GT(static_cast<double>(stride_steps) / total, 0.9);
}

} // namespace
} // namespace padc::workload
